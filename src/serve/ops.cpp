#include "serve/ops.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <system_error>
#include <thread>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "advisor/attribution_report.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "gemmsim/explain.hpp"
#include "gpuarch/dtype.hpp"
#include "obs/metrics.hpp"
#include "sweep/driver.hpp"
#include "sweep/report.hpp"
#include "transformer/config_parse.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign::serve {

SearchModeSpec parse_search_mode(const std::string& mode) {
  SearchModeSpec spec;
  if (mode == "mlp") {
    spec.is_mlp = true;
  } else if (mode == "heads") {
    spec.shape_mode = advisor::SearchMode::kHeads;
  } else if (mode == "hidden") {
    spec.shape_mode = advisor::SearchMode::kHidden;
  } else if (mode == "joint") {
    spec.shape_mode = advisor::SearchMode::kJoint;
  } else {
    throw Error("--mode must be heads, hidden, joint, or mlp; got '" + mode +
                "'");
  }
  return spec;
}

void default_dff_range(const tfm::TransformerConfig& config, std::int64_t* lo,
                       std::int64_t* hi) {
  const auto center = static_cast<std::int64_t>(8 * config.hidden_size / 3);
  *lo = (center * 3) / 4;
  *hi = (center * 5) / 4;
}

void render_advise(std::ostream& os, const tfm::TransformerConfig& config,
                   const gemm::GemmSimulator& sim,
                   const advisor::ReportOptions& options) {
  os << advisor::advise(config, sim, options);
}

void render_estimate(std::ostream& os, const gemm::GemmProblem& problem,
                     const gemm::GemmSimulator& sim) {
  const auto est = sim.estimate(problem);
  os << problem.to_string() << " on " << sim.gpu().id << ":\n"
     << str_format(
            "  time %s  |  %.1f TFLOP/s  |  %s-bound  |  tile %s  |  "
            "%lld tiles in %lld waves\n",
            human_time(est.time).c_str(), est.tflops(),
            gemm::bound_name(est.bound), est.tile.name().c_str(),
            static_cast<long long>(est.tile_q.tiles_total),
            static_cast<long long>(est.wave_q.waves))
     << str_format(
            "  alignment: m %.2f, n %.2f, k %.2f (combined %.2f, "
            "tensor cores %s)\n",
            est.alignment.m, est.alignment.n, est.alignment.k,
            est.alignment.combined,
            est.alignment.tensor_cores ? "ON" : "OFF");
}

void render_explain(std::ostream& os, const gemm::GemmProblem& problem,
                    const gemm::GemmSimulator& sim) {
  os << gemm::explain_gemm(problem, sim.gpu()).to_string();
}

int report_sweep_outcome(std::ostream& os,
                         const std::vector<advisor::SkippedCandidate>& skipped,
                         std::size_t total, std::size_t evaluated,
                         std::size_t resumed, std::size_t retries,
                         std::size_t unreached, bool truncated,
                         CancelReason reason) {
  if (!skipped.empty()) {
    os << "\nskipped " << skipped.size() << " of " << total
       << " candidate(s):\n";
    TableWriter t({"candidate", "attempts", "reason"});
    for (const auto& s : skipped) {
      t.new_row()
          .cell(s.config.name)
          .cell(static_cast<std::int64_t>(s.attempts))
          .cell(s.reason);
    }
    t.write(os);
  }
  if (retries > 0) {
    os << "retried " << retries << " transient fault(s)\n";
  }
  if (resumed > 0) {
    os << "resumed " << resumed << " candidate(s) from the checkpoint\n";
  }
  if (truncated) {
    os << "*** PARTIAL RESULTS: sweep cancelled (" << cancel_reason_name(reason)
       << ") after " << evaluated << " of " << total << " candidates; "
       << unreached << " never evaluated ***\n"
       << "*** re-run with --checkpoint=<file> --resume to finish ***\n";
    return kExitCancelled;
  }
  return kExitOk;
}

int render_search(std::ostream& os, const SearchRequest& request,
                  const gemm::GemmSimulator& sim) {
  const SearchModeSpec mode = parse_search_mode(request.mode);
  const advisor::SearchOptions& options = request.options;
  const tfm::TransformerConfig& cfg = request.config;

  const auto banner = [&] {
    os << request.mode << " search around " << cfg.to_string() << " on "
       << sim.gpu().id << " (" << options.threads << " thread"
       << (options.threads == 1 ? "" : "s") << (sim.cache() ? ", cached" : "")
       << (options.faults.strict ? ", strict" : "") << "):\n";
  };

  if (mode.is_mlp) {
    const advisor::MlpSearchOutcome outcome = advisor::run_mlp_search(
        cfg, sim, request.dff_lo, request.dff_hi, options);
    banner();
    TableWriter t({"d_ff", "d_ff/h", "MLP time", "TFLOP/s", "percentile"});
    for (const auto& c : outcome.ranked) {
      t.new_row()
          .cell(c.d_ff)
          .cell(c.coefficient, 3)
          .cell(human_time(c.mlp_time))
          .cell(c.mlp_tflops, 1)
          .cell(str_format("%.2f", c.rank_in_range));
    }
    t.write(os);
    return report_sweep_outcome(os, outcome.skipped, outcome.total_candidates,
                                outcome.evaluated, outcome.resumed,
                                outcome.retries, outcome.unreached(),
                                outcome.truncated, outcome.cancel_reason);
  }

  const advisor::SearchOutcome outcome = advisor::run_shape_search(
      mode.shape_mode, cfg, sim, request.radius, 0, options);
  banner();
  TableWriter t({"candidate", "a", "h", "h/a", "layer time", "TFLOP/s",
                 "speedup", "params", "rules", "note"});
  for (const auto& c : outcome.ranked) {
    t.new_row()
        .cell(c.config.name)
        .cell(c.config.num_heads)
        .cell(c.config.hidden_size)
        .cell(c.config.head_dim())
        .cell(human_time(c.layer_time))
        .cell(c.layer_tflops, 1)
        .cell(str_format("%.3fx", c.speedup_vs_base))
        .cell(human_count(c.param_count))
        .cell(c.rules_pass ? "PASS" : "FAIL")
        .cell(c.note);
  }
  t.write(os);
  return report_sweep_outcome(os, outcome.skipped, outcome.total_candidates,
                              outcome.evaluated, outcome.resumed,
                              outcome.retries, outcome.unreached(),
                              outcome.truncated, outcome.cancel_reason);
}

namespace {

std::int64_t int_field(const json::Value& body, std::string_view key,
                       std::int64_t def) {
  return static_cast<std::int64_t>(body.number_or(key,
                                                  static_cast<double>(def)));
}

/// "model" (zoo name) or "custom" (config spec string) — the request-field
/// twin of the CLI's model_arg().
tfm::TransformerConfig model_from_body(const json::Value& body) {
  if (body.has("custom")) {
    return tfm::parse_config_string(body.at("custom").as_string());
  }
  const json::Value* model = body.get("model");
  if (model == nullptr || !model->is_string()) {
    throw UsageError(
        "request needs \"model\" (a zoo name) or \"custom\" "
        "(h=...,a=...,L=...)");
  }
  return tfm::model_by_name(model->as_string());
}

gemm::GemmProblem problem_from_body(const json::Value& body) {
  gemm::GemmProblem p;
  p.m = int_field(body, "m", 0);
  p.n = int_field(body, "n", 0);
  p.k = int_field(body, "k", 0);
  p.batch = int_field(body, "batch", 1);
  p.dtype = gpu::dtype_from_name(body.string_or("dtype", "fp16"));
  p.validate();
  return p;
}

gemm::GemmSimulator sim_from_body(const json::Value& body,
                                  const OpContext& context) {
  gemm::GemmSimulator sim =
      gemm::GemmSimulator::for_gpu(body.string_or("gpu", "a100"));
  if (context.cache != nullptr) sim.set_cache(context.cache);
  return sim;
}

/// Non-search ops have no partial-result story: a tripped deadline turns
/// into CancelledError (code 6), checked before the expensive render.
void check_deadline(const OpContext& context, const char* what) {
  if (context.cancel != nullptr && context.cancel->cancelled()) {
    throw CancelledError(
        str_format("request cancelled (%s) before %s",
                   cancel_reason_name(context.cancel->reason()), what));
  }
}

OpResult op_advise(const Request& request, const OpContext& context) {
  check_deadline(context, "advise");
  const tfm::TransformerConfig cfg = model_from_body(request.body);
  const gemm::GemmSimulator sim = sim_from_body(request.body, context);
  advisor::ReportOptions options;  // threads = 1: concurrency is per-request
  std::ostringstream os;
  render_advise(os, cfg, sim, options);
  OpResult result{kExitOk, os.str()};
  if (request.body.bool_or("attribution", false)) {
    // Compact (single-line) so the envelope stays one frame of the
    // newline-delimited protocol. Sensitivity probes are a CLI-side
    // concern (`codesign analyze` / `search --attribution`); the serve
    // block carries the attribution rollups with an empty round.
    result.attribution =
        advisor::attribution_report(cfg, sim, {}, /*compact=*/true);
  }
  return result;
}

/// Batched advisory: one request carries N (model|custom, gpu) tuples and
/// the response payload is one JSON array of strings, element i being
/// byte-identical to the scalar advise payload for tuple i (asserted by
/// test_serve and the bench_serve_throughput checksum mix). Amortizes the
/// request round-trip and shares the process-wide estimate cache across
/// tuples; the deadline is re-checked between tuples so a slow batch
/// cancels cleanly instead of overrunning.
OpResult op_advise_many(const Request& request, const OpContext& context) {
  check_deadline(context, "advise_many");
  const json::Value* items = request.body.get("items");
  if (items == nullptr || !items->is_array()) {
    throw UsageError(
        "advise_many needs \"items\": an array of {model|custom, gpu} "
        "tuples");
  }
  const auto& tuples = items->as_array();
  if (tuples.empty()) {
    throw UsageError("advise_many: \"items\" must not be empty");
  }
  constexpr std::size_t kMaxTuples = 256;
  if (tuples.size() > kMaxTuples) {
    throw UsageError(str_format(
        "advise_many: at most %zu items per request (got %zu) — split the "
        "batch",
        kMaxTuples, tuples.size()));
  }
  const bool want_attribution = request.body.bool_or("attribution", false);
  std::ostringstream payload;
  json::Writer w(payload);
  w.begin_array();
  std::ostringstream attribution;
  json::Writer aw(attribution);
  if (want_attribution) aw.begin_array();
  for (const json::Value& item : tuples) {
    check_deadline(context, "advise_many item");
    const tfm::TransformerConfig cfg = model_from_body(item);
    const gemm::GemmSimulator sim = sim_from_body(item, context);
    advisor::ReportOptions options;  // threads = 1: concurrency is per-request
    std::ostringstream os;
    render_advise(os, cfg, sim, options);
    w.value(os.str());
    if (want_attribution) {
      // Element i attributes tuple i — same alignment as the payload array.
      aw.raw(advisor::attribution_report(cfg, sim, {}, /*compact=*/true));
    }
  }
  w.end_array();
  payload << "\n";
  OpResult result{kExitOk, payload.str()};
  if (want_attribution) {
    aw.end_array();
    result.attribution = attribution.str();
  }
  return result;
}

OpResult op_search(const Request& request, const OpContext& context) {
  check_deadline(context, "search");
  SearchRequest sr;
  sr.config = model_from_body(request.body);
  sr.mode = request.body.string_or("mode", "joint");
  parse_search_mode(sr.mode);  // reject unknown modes before the sweep
  sr.radius = request.body.number_or("radius", 0.1);
  sr.options.max_candidates =
      static_cast<std::size_t>(int_field(request.body, "max", 16));
  sr.options.faults.strict = request.body.bool_or("strict", false);
  sr.options.faults.max_retries =
      static_cast<int>(int_field(request.body, "retries", 2));
  sr.options.threads = 1;  // the worker pool parallelizes across requests
  sr.options.cancel = context.cancel;
  std::int64_t lo = 0, hi = 0;
  default_dff_range(sr.config, &lo, &hi);
  sr.dff_lo = int_field(request.body, "lo", lo);
  sr.dff_hi = int_field(request.body, "hi", hi);
  const gemm::GemmSimulator sim = sim_from_body(request.body, context);
  std::ostringstream os;
  const int code = render_search(os, sr, sim);
  return {code, os.str()};
}

OpResult op_estimate(const Request& request, const OpContext& context) {
  check_deadline(context, "estimate");
  const gemm::GemmProblem p = problem_from_body(request.body);
  const gemm::GemmSimulator sim = sim_from_body(request.body, context);
  std::ostringstream os;
  render_estimate(os, p, sim);
  return {kExitOk, os.str()};
}

OpResult op_explain(const Request& request, const OpContext& context) {
  check_deadline(context, "explain");
  const gemm::GemmProblem p = problem_from_body(request.body);
  const gemm::GemmSimulator sim = sim_from_body(request.body, context);
  std::ostringstream os;
  render_explain(os, p, sim);
  return {kExitOk, os.str()};
}

/// Run a declarative workload x hardware scenario matrix (docs/SWEEP.md).
/// The body carries the sweep config file's text inline in "config"; the
/// payload is the compact codesign.sweep report plus a trailing newline —
/// byte-identical to `codesign sweep --config=<f> --json` stdout for the
/// same config text, so a fleet can fan matrix slices out to servers and
/// diff the results against local runs.
OpResult op_sweep(const Request& request, const OpContext& context) {
  check_deadline(context, "sweep");
  const json::Value* text = request.body.get("config");
  if (text == nullptr || !text->is_string()) {
    throw UsageError(
        "sweep: request needs \"config\" (the sweep config file's text)");
  }
  const sweep::SweepPlan plan = sweep::parse_sweep_config(
      text->as_string(), request.body.string_or("origin", "request"));
  sweep::SweepOptions options;
  options.threads = 1;  // the worker pool parallelizes across requests
  options.cache = context.cache;
  options.faults.strict = request.body.bool_or("strict", false);
  options.faults.max_retries =
      static_cast<int>(int_field(request.body, "retries", 2));
  options.cancel = context.cancel;
  const sweep::SweepResult result = sweep::run_sweep(plan, options);
  return {result.truncated ? kExitCancelled : kExitOk,
          sweep::sweep_report_json(result, /*compact=*/true) + "\n"};
}

/// Best-effort process health gauges folded into a stats snapshot: resident
/// set size, open file descriptors, server uptime. Values come from
/// /proc/self (skipped wholesale on platforms without it) and are tagged
/// kBestEffort — they can never appear in a deterministic export. Like the
/// cache fold below, this synthesizes snapshot-local series and leaves the
/// global registry untouched.
void append_process_series(obs::MetricsSnapshot& snap,
                           const OpContext& context) {
  auto add_gauge = [&snap](const char* name, double value) {
    obs::MetricsSnapshot::Series s;
    s.name = name;
    s.kind = obs::MetricKind::kGauge;
    s.stability = obs::Stability::kBestEffort;
    s.value = value;
    snap.add_series(std::move(s));
  };
#if defined(__linux__)
  std::ifstream statm("/proc/self/statm");
  if (statm.good()) {
    long long total_pages = 0, rss_pages = 0;
    if (statm >> total_pages >> rss_pages) {
      const long page = sysconf(_SC_PAGESIZE);
      add_gauge("process.rss_bytes",
                static_cast<double>(rss_pages) * static_cast<double>(page));
    }
  }
  std::error_code ec;
  std::filesystem::directory_iterator it("/proc/self/fd", ec);
  if (!ec) {
    std::uint64_t fds = 0;
    for (const auto& entry : it) {
      (void)entry;
      ++fds;
    }
    // The iterator itself holds one fd while we count; don't report it.
    if (fds > 0) --fds;
    add_gauge("process.open_fds", static_cast<double>(fds));
  }
#endif
  if (context.health) {
    add_gauge("process.uptime_s",
              static_cast<double>(context.health().uptime_s));
  }
}

OpResult op_stats(const Request& request, const OpContext& context) {
  const std::string format = request.body.string_or("format", "json");
  if (format != "json" && format != "prom") {
    throw UsageError("stats: \"format\" must be json or prom; got '" + format +
                     "'");
  }
  // Full snapshot: serve metrics are wall-clock (kBestEffort) by nature.
  // Cache counters are folded into *this snapshot* rather than published
  // into the global registry, so reading stats has no side effect on
  // registry contents — two stats calls with no traffic between them
  // return identical documents (modulo the live process gauges).
  obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot(
      {.include_best_effort = true});
  if (context.cache != nullptr) context.cache->append_metrics(snap);
  append_process_series(snap, context);
  return {kExitOk, format == "prom" ? snap.to_prom() : snap.to_json()};
}

/// Last-N completed requests with phase breakdowns, newest (or slowest)
/// first. Body fields: "n" (default 16, capped 4096), "filter"
/// (all|slow|errors, default slow). Bypasses admission control like stats:
/// the moment you need tail is the moment the queue is full.
OpResult op_tail(const Request& request, const OpContext& context) {
  if (context.trace_log == nullptr) {
    throw UsageError(
        "tail: request tracing is disabled on this server (restart serve "
        "with a nonzero --tail ring)");
  }
  const std::int64_t raw_n = int_field(request.body, "n", 16);
  if (raw_n < 1) throw UsageError("tail: \"n\" must be >= 1");
  const auto n = static_cast<std::size_t>(std::min<std::int64_t>(raw_n, 4096));
  const std::string filter = request.body.string_or("filter", "slow");
  return {kExitOk, render_tail(context.trace_log->tail(n, filter))};
}

/// Liveness + load in one probe. Bypasses admission control (the moment a
/// fleet wants to know whether a replica is shedding load is the moment
/// its queue is full), so it must stay cheap: a handful of atomic loads
/// rendered into one compact JSON line.
OpResult op_health(const Request& request, const OpContext& context) {
  (void)request;
  if (!context.health) {
    throw UsageError(
        "health: only available over codesign serve (no server is bound to "
        "this context)");
  }
  const HealthInfo h = context.health();
  const char* status = h.draining      ? "draining"
                       : h.overloaded  ? "overloaded"
                       : h.brownout    ? "brownout"
                                       : "ok";
  std::ostringstream payload;
  json::Writer w(payload);
  w.begin_object();
  w.member("status", status);
  w.member("ok", !h.draining && !h.overloaded && !h.brownout);
  w.member("draining", h.draining);
  w.member("overloaded", h.overloaded);
  w.member("brownout", h.brownout);
  w.member("queue_depth", static_cast<long long>(h.queue_depth));
  w.member("queue_capacity", static_cast<long long>(h.queue_capacity));
  w.member("uptime_s", static_cast<long long>(h.uptime_s));
  w.end_object();
  payload << "\n";
  return {kExitOk, payload.str()};
}

/// Diagnostic op: hold a worker for "ms" (capped at 10 s), polling the
/// request deadline. The overload and drain tests use it to pin workers
/// deterministically; it is not part of the advisory surface.
OpResult op_sleep(const Request& request, const OpContext& context) {
  const std::int64_t ms =
      std::min<std::int64_t>(int_field(request.body, "ms", 10), 10000);
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < until) {
    check_deadline(context, "sleep completed");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return {kExitOk, str_format("slept %lld ms\n", static_cast<long long>(ms))};
}

}  // namespace

OpResult execute_op(const Request& request, const OpContext& context) {
  if (request.op == "advise") return op_advise(request, context);
  if (request.op == "advise_many") return op_advise_many(request, context);
  if (request.op == "search") return op_search(request, context);
  if (request.op == "sweep") return op_sweep(request, context);
  if (request.op == "estimate") return op_estimate(request, context);
  if (request.op == "explain") return op_explain(request, context);
  if (request.op == "stats") return op_stats(request, context);
  if (request.op == "tail") return op_tail(request, context);
  if (request.op == "health") return op_health(request, context);
  if (request.op == "sleep") return op_sleep(request, context);
  if (request.op == "ping") return {kExitOk, "pong\n"};
  throw UsageError("unknown op '" + request.op +
                   "' (advise|advise_many|search|sweep|estimate|explain|stats|"
                   "tail|health|ping|sleep)");
}

}  // namespace codesign::serve
