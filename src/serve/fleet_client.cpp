#include "serve/fleet_client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"

namespace codesign::serve {

namespace {

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::vector<FleetEndpoint> parse_endpoints(std::string_view spec) {
  std::vector<FleetEndpoint> out;
  for (const std::string& part : split(std::string(spec), ',')) {
    const std::string entry{trim(part)};
    if (entry.empty()) continue;
    FleetEndpoint ep;
    std::string port_text = entry;
    const auto colon = entry.rfind(':');
    if (colon != std::string::npos) {
      ep.host = std::string(trim(entry.substr(0, colon)));
      port_text = std::string(trim(entry.substr(colon + 1)));
      if (ep.host.empty()) {
        throw UsageError("endpoint '" + entry + "' has an empty host");
      }
    }
    std::int64_t port;
    try {
      port = parse_int(port_text);
    } catch (const Error&) {
      throw UsageError("endpoint '" + entry +
                       "' has a malformed port (want host:port or port)");
    }
    if (port < 1 || port > 65535) {
      throw UsageError("endpoint '" + entry + "' port out of range [1, 65535]");
    }
    ep.port = static_cast<int>(port);
    out.push_back(std::move(ep));
  }
  if (out.empty()) {
    throw UsageError("endpoint list is empty (want host:port[,host:port...])");
  }
  return out;
}

const char* attempt_outcome_name(AttemptOutcome o) {
  switch (o) {
    case AttemptOutcome::kOk:
      return "ok";
    case AttemptOutcome::kIoError:
      return "io_error";
    case AttemptOutcome::kOverloaded:
      return "overloaded";
  }
  return "?";
}

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

FleetClient::FleetClient(FleetOptions options)
    : opt_(std::move(options)), rng_(opt_.seed) {
  CODESIGN_CHECK(!opt_.endpoints.empty(),
                 "FleetClient needs at least one endpoint");
  if (!opt_.now_ms) opt_.now_ms = steady_now_ms;
  if (!opt_.sleep_ms) {
    opt_.sleep_ms = [](std::int64_t ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
  endpoints_.resize(opt_.endpoints.size());
  for (std::size_t i = 0; i < opt_.endpoints.size(); ++i) {
    endpoints_[i].addr = opt_.endpoints[i];
  }
}

FleetClient::~FleetClient() = default;

void FleetClient::close() {
  for (EndpointState& ep : endpoints_) ep.conn.reset();
}

BreakerState FleetClient::breaker_state(std::size_t endpoint) const {
  CODESIGN_CHECK(endpoint < endpoints_.size(), "endpoint index out of range");
  return endpoints_[endpoint].state;
}

std::size_t FleetClient::pick_endpoint(std::size_t from) {
  const std::size_t n = endpoints_.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = (from + step) % n;
    EndpointState& ep = endpoints_[i];
    if (ep.state == BreakerState::kOpen &&
        now_ms() - ep.opened_at_ms >= opt_.breaker.open_ms) {
      ep.state = BreakerState::kHalfOpen;
    }
    if (ep.state != BreakerState::kOpen) return i;
  }
  return n;
}

void FleetClient::record_success(EndpointState& ep) {
  ep.consecutive_failures = 0;
  ep.state = BreakerState::kClosed;
}

void FleetClient::record_failure(EndpointState& ep) {
  ++ep.consecutive_failures;
  const bool trip =
      ep.state == BreakerState::kHalfOpen ||
      ep.consecutive_failures >= opt_.breaker.failure_threshold;
  if (trip && ep.state != BreakerState::kOpen) {
    ep.state = BreakerState::kOpen;
    ep.opened_at_ms = now_ms();
    ++stats_.breaker_trips;
  }
}

std::int64_t FleetClient::jittered_backoff(int round, std::int64_t floor_ms) {
  std::int64_t b = opt_.backoff_base_ms;
  for (int i = 0; i < round && b < opt_.backoff_max_ms; ++i) b *= 2;
  b = std::min(b, opt_.backoff_max_ms);
  std::int64_t sleep = b <= 1 ? b : rng_.uniform_int(b / 2, b);
  return std::max(sleep, floor_ms);
}

Response FleetClient::call(std::string_view request_line) {
  ++stats_.calls;
  attempts_.clear();

  const std::int64_t start = now_ms();
  const bool bounded = opt_.call_deadline_ms > 0;
  auto remaining = [&]() -> std::int64_t {
    if (!bounded) return INT64_MAX;
    return opt_.call_deadline_ms - (now_ms() - start);
  };

  // Round-robin across calls: spread a single-threaded caller's load over
  // the fleet instead of pinning everything to endpoint 0.
  std::size_t at = cursor_ % endpoints_.size();
  cursor_ = (cursor_ + 1) % endpoints_.size();

  bool have_overloaded = false;
  Response last_overloaded;
  std::string last_io_error = "no attempt was made";
  int round = 0;
  std::size_t tried_this_round = 0;
  std::int64_t round_retry_after = 0;

  while (static_cast<int>(attempts_.size()) < opt_.max_attempts &&
         remaining() > 0) {
    const std::size_t idx = pick_endpoint(at);
    const bool all_open = idx == endpoints_.size();

    if (all_open || tried_this_round >= endpoints_.size()) {
      // A full pass found nothing usable (every breaker open, or every
      // available endpoint failed this round): sleep, then start the next
      // round. The sleep is the jittered exponential, floored at the
      // largest retry_after_ms hint any server gave this round, and capped
      // by the remaining call budget.
      std::int64_t sleep = jittered_backoff(round, round_retry_after);
      if (bounded) sleep = std::min(sleep, remaining());
      if (sleep <= 0 && bounded) break;
      if (!attempts_.empty()) attempts_.back().backoff_ms += sleep;
      opt_.sleep_ms(sleep);
      ++round;
      tried_this_round = 0;
      round_retry_after = 0;
      if (all_open) continue;  // re-pick: a cooldown may have elapsed
    }

    EndpointState& ep = endpoints_[idx];
    ++stats_.attempts;
    if (attempts_.size() >= 1) ++stats_.retries;
    if (!attempts_.empty() && attempts_.back().endpoint != idx) {
      ++stats_.failovers;
    }
    ++tried_this_round;

    FleetAttempt attempt;
    attempt.endpoint = idx;
    try {
      if (!ep.conn) {
        const std::int64_t budget =
            bounded ? std::min(opt_.connect_timeout_ms, remaining())
                    : opt_.connect_timeout_ms;
        ep.conn = std::make_unique<ServeClient>(
            ep.addr.host, ep.addr.port,
            ClientOptions{budget, opt_.read_timeout_ms, opt_.write_timeout_ms});
        if (ep.ever_connected) ++stats_.reconnects;
        ep.ever_connected = true;
      }
      const Response resp = ep.conn->call(request_line);
      if (resp.overloaded() || resp.code == kExitUnavailable) {
        attempt.outcome = AttemptOutcome::kOverloaded;
        attempt.retry_after_ms = resp.retry_after_ms;
        attempts_.push_back(attempt);
        ++stats_.overloaded_seen;
        have_overloaded = true;
        last_overloaded = resp;
        round_retry_after = std::max(round_retry_after, resp.retry_after_ms);
        record_failure(ep);
        at = (idx + 1) % endpoints_.size();  // immediate sibling failover
        continue;
      }
      attempt.outcome = AttemptOutcome::kOk;
      attempts_.push_back(attempt);
      record_success(ep);
      return resp;
    } catch (const IoError& e) {
      attempt.outcome = AttemptOutcome::kIoError;
      attempts_.push_back(attempt);
      ++stats_.io_errors;
      last_io_error = e.what();
      ep.conn.reset();  // reconnect on the next attempt at this endpoint
      record_failure(ep);
      at = (idx + 1) % endpoints_.size();
      continue;
    }
  }

  if (have_overloaded) return last_overloaded;
  throw IoError(str_format(
      "fleet: request failed after %zu attempt(s) across %zu endpoint(s): %s",
      attempts_.size(), endpoints_.size(), last_io_error.c_str()));
}

Response FleetClient::call_op(std::string_view op,
                              std::string_view extra_members) {
  std::string request = "{\"op\":\"" + json::escape(op) + "\"";
  if (!extra_members.empty()) {
    request += ',';
    request += extra_members;
  }
  request += '}';
  return call(request);
}

std::string FleetClient::attempt_log() const {
  std::string out;
  for (std::size_t i = 0; i < attempts_.size(); ++i) {
    const FleetAttempt& a = attempts_[i];
    out += str_format("attempt %zu: endpoint %zu %s", i, a.endpoint,
                      attempt_outcome_name(a.outcome));
    if (a.outcome == AttemptOutcome::kOverloaded) {
      out += str_format(" (retry_after %lld ms)",
                        static_cast<long long>(a.retry_after_ms));
    }
    if (a.backoff_ms > 0) {
      out += str_format(" backoff %lldms", static_cast<long long>(a.backoff_ms));
    }
    out += '\n';
  }
  return out;
}

}  // namespace codesign::serve
