#include "serve/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "obs/events.hpp"

namespace codesign::serve {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kParse: return "parse";
    case Phase::kQueueWait: return "queue_wait";
    case Phase::kExecute: return "execute";
    case Phase::kRender: return "render";
    case Phase::kWrite: return "write";
  }
  return "?";
}

double RequestRecord::phase_sum_us() const {
  double sum = 0.0;
  for (const double us : phase_us) sum += us;
  return sum;
}

RequestTrace::RequestTrace(std::uint64_t seq, double start_us) {
  record_.seq = seq;
  record_.start_us = start_us;
}

RequestTraceLog::RequestTraceLog(const TraceOptions& options)
    : opt_(options), epoch_(std::chrono::steady_clock::now()) {
  if (opt_.ring_stripes == 0) opt_.ring_stripes = 1;
  if (opt_.ring_capacity == 0) opt_.ring_capacity = 1;
  opt_.ring_stripes = std::min(opt_.ring_stripes, opt_.ring_capacity);
  stripe_capacity_ =
      (opt_.ring_capacity + opt_.ring_stripes - 1) / opt_.ring_stripes;
  stripes_.reserve(opt_.ring_stripes);
  for (std::size_t i = 0; i < opt_.ring_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

double RequestTraceLog::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void RequestTraceLog::finish(RequestTrace& trace) {
  RequestRecord& rec = trace.record();
  rec.total_us = now_us() - rec.start_us;

  // SLO accounting covers every completed request, ring survivor or not.
  n_requests_.fetch_add(1, std::memory_order_relaxed);
  if (rec.deadline_missed) {
    n_deadline_miss_.fetch_add(1, std::memory_order_relaxed);
  }
  if (rec.status == "ok" && rec.code == kExitCancelled) {
    n_truncated_.fetch_add(1, std::memory_order_relaxed);
  }
  if (rec.status == "error") n_errors_.fetch_add(1, std::memory_order_relaxed);
  if (rec.status == "overloaded") {
    n_overloaded_.fetch_add(1, std::memory_order_relaxed);
  }
  latency_ms_.record(rec.total_us / 1000.0);

  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    constexpr auto kBe = obs::Stability::kBestEffort;
    const std::string op_labels = "op=" + rec.op;
    reg.counter("serve.requests", op_labels, kBe).add();
    reg.histogram("serve.request_us", op_labels, kBe).record(rec.total_us);
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      if (rec.phase_us[p] <= 0.0) continue;
      reg.histogram("serve.phase_us",
                    std::string("phase=") + phase_name(static_cast<Phase>(p)),
                    kBe)
          .record(rec.phase_us[p]);
    }
    if (rec.deadline_missed) {
      reg.counter("serve.slo.deadline_miss", {}, kBe).add();
    }
    if (rec.status == "ok" && rec.code == kExitCancelled) {
      reg.counter("serve.slo.truncated", {}, kBe).add();
    }
    if (rec.status == "error") reg.counter("serve.slo.errors", {}, kBe).add();
  }

  // Chrome-trace export: one track per request, keyed by the echoed id.
  // Phases are laid out cumulatively in canonical order from the request's
  // wall start — they are sequential in the real timeline, with only
  // scheduling slack between them, so the track reads as the request's
  // life story.
  if (obs::EventRecorder* recorder = obs::EventRecorder::active()) {
    const double end_us = recorder->wall_now_us();
    const double start_us = end_us - rec.total_us;
    const auto tid =
        kTidServeBase + static_cast<std::int32_t>(rec.seq % 100000);
    obs::TraceEvent whole;
    whole.name = rec.op.empty() ? "request" : rec.op;
    whole.category = "serve";
    whole.tid = tid;
    whole.ts_us = start_us;
    whole.dur_us = rec.total_us;
    whole.clock = obs::EventClock::kWall;
    whole.args = {{"id", rec.id},
                  {"status", rec.status},
                  {"code", std::to_string(rec.code)},
                  {"estimates", std::to_string(rec.estimates)},
                  {"search_candidates", std::to_string(rec.search_candidates)}};
    recorder->record(std::move(whole));
    double cursor = start_us;
    static constexpr Phase kCanonical[] = {Phase::kParse, Phase::kQueueWait,
                                           Phase::kExecute, Phase::kRender,
                                           Phase::kWrite};
    for (const Phase p : kCanonical) {
      const double us = rec.phase_us[static_cast<std::size_t>(p)];
      if (us <= 0.0) continue;
      obs::TraceEvent ev;
      ev.name = phase_name(p);
      ev.category = "serve";
      ev.tid = tid;
      ev.ts_us = cursor;
      ev.dur_us = us;
      ev.clock = obs::EventClock::kWall;
      ev.args = {{"id", rec.id}};
      recorder->record(std::move(ev));
      cursor += us;
    }
  }

  Stripe& stripe = *stripes_[rec.seq % stripes_.size()];
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (stripe.ring.size() < stripe_capacity_) {
    stripe.ring.push_back(std::move(rec));
  } else {
    stripe.ring[stripe.next] = std::move(rec);
    stripe.next = (stripe.next + 1) % stripe_capacity_;
  }
  ++stripe.stored;
}

std::vector<RequestRecord> RequestTraceLog::tail(std::size_t n,
                                                 std::string_view filter) const {
  if (filter != "all" && filter != "slow" && filter != "errors") {
    throw UsageError("tail: filter must be all, slow, or errors; got '" +
                     std::string(filter) + "'");
  }
  std::vector<RequestRecord> out;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const RequestRecord& rec : stripe->ring) {
      if (filter == "errors" && rec.status == "ok" && rec.code == 0) continue;
      out.push_back(rec);
    }
  }
  if (filter == "slow") {
    std::sort(out.begin(), out.end(),
              [](const RequestRecord& a, const RequestRecord& b) {
                if (a.total_us != b.total_us) return a.total_us > b.total_us;
                return a.seq > b.seq;
              });
  } else {
    std::sort(out.begin(), out.end(),
              [](const RequestRecord& a, const RequestRecord& b) {
                return a.seq > b.seq;
              });
  }
  if (out.size() > n) out.resize(n);
  return out;
}

SloSummary RequestTraceLog::slo_summary() const {
  SloSummary s;
  s.requests = n_requests_.load(std::memory_order_relaxed);
  s.deadline_misses = n_deadline_miss_.load(std::memory_order_relaxed);
  s.truncated = n_truncated_.load(std::memory_order_relaxed);
  s.errors = n_errors_.load(std::memory_order_relaxed);
  s.overloaded = n_overloaded_.load(std::memory_order_relaxed);
  const obs::Histogram::Data d = latency_ms_.data();
  s.p50_ms = d.percentile(50.0);
  s.p95_ms = d.percentile(95.0);
  s.p99_ms = d.percentile(99.0);
  s.slo_p99_ms = opt_.slo_p99_ms;
  return s;
}

std::string render_tail(const std::vector<RequestRecord>& records) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_array();
  for (const RequestRecord& rec : records) {
    w.begin_object();
    w.member("seq", static_cast<unsigned long long>(rec.seq));
    w.member("id", rec.id);
    w.member("op", rec.op);
    w.member("status", rec.status);
    w.member("code", rec.code);
    w.member("start_us", rec.start_us);
    w.member("total_us", rec.total_us);
    w.key("phases").begin_object();
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      w.member(phase_name(static_cast<Phase>(p)), rec.phase_us[p]);
    }
    w.end_object();
    w.member("phase_sum_us", rec.phase_sum_us());
    w.member("estimates", static_cast<unsigned long long>(rec.estimates));
    w.member("search_candidates",
             static_cast<unsigned long long>(rec.search_candidates));
    w.member("deadline_missed", rec.deadline_missed);
    w.member("error", rec.error);
    w.member("error_phase", rec.error_phase);
    w.end_object();
  }
  w.end_array();
  os << '\n';
  return os.str();
}

}  // namespace codesign::serve
