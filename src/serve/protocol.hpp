// protocol.hpp — the codesign serve wire protocol.
//
// Newline-delimited JSON over a plain TCP stream: the client writes one
// request object per line, the server answers with exactly one response
// object per request, in *completion* order — pooled requests may finish
// out of order, and stats/ping/error/overloaded replies are written
// inline on the reader thread, ahead of in-flight work. A client that
// pipelines more than one request per connection must set "id" and
// correlate responses by the echoed id. Requests are parsed with
// common/json; responses are emitted through json::Writer, the same
// writer the bench reports use.
//
// Request (docs/SERVING.md has the full schema):
//   {"op":"advise"|"advise_many"|"search"|"estimate"|"explain"|"stats"
//        |"tail"|"health"|"ping"|"sleep",
//    "id":"<echoed>", "deadline_ms":N, ...op-specific fields...}
//
// stats takes "format":"json"|"prom" (default json); tail takes "n"
// (default 16) and "filter":"slow"|"all"|"errors" (default slow) and
// returns the recent-request ring with per-phase latency breakdowns
// (docs/OBSERVABILITY.md documents the record schema); health returns the
// server's {status, ok, draining, overloaded, brownout, queue_depth,
// queue_capacity, uptime_s} self-assessment. stats, ping, tail, and
// health bypass admission control.
//
// Response envelope:
//   {"status":"ok",         "code":0|6, "id":..., "payload":"<CLI bytes>"}
//   {"status":"error",      "code":N,   "id":..., "error":"<message>"}
//   {"status":"overloaded", "code":75,  "id":..., "retry_after_ms":N,
//    "error":"<message>"}
//
// `code` mirrors the CLI exit-code taxonomy (common/error.hpp): a client
// can exit with it verbatim and scripts observe the same codes whether
// they ran the one-shot CLI or went through the server. status "ok" with
// code 6 means a deadline truncated the operation and `payload` carries
// partial results with the explicit truncation banner — the same
// semantics as `codesign search --deadline-ms`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/json.hpp"

namespace codesign::serve {

inline constexpr const char* kProtocolName = "codesign.serve";
inline constexpr int kProtocolVersion = 1;

/// One parsed request line.
struct Request {
  std::string op;
  std::string id;                ///< optional correlation id, echoed back
  std::int64_t deadline_ms = 0;  ///< per-request budget; 0 = server default
  json::Value body;              ///< the full request object (op arguments)
};

/// Parse one request line. Throws UsageError on malformed JSON, a
/// non-object document, a missing/non-string "op", or a negative
/// deadline_ms — the caller answers those with a code-2 error response.
Request parse_request(std::string_view line);

/// Response envelope builders. Each returns one complete line, terminated
/// with '\n'. `id` is echoed when non-empty. `attribution`, when non-empty,
/// is pre-rendered single-line compact JSON (advise: an attribution report
/// object; advise_many: an array aligned with "items") spliced verbatim
/// into an "attribution" member — requested with `"attribution": true` on
/// advise/advise_many and absent otherwise, so default envelopes are
/// byte-identical to protocol version 1 clients' expectations.
std::string ok_response(std::string_view id, int code,
                        std::string_view payload,
                        std::string_view attribution = {});
std::string error_response(std::string_view id, int code,
                           std::string_view message);
std::string overloaded_response(std::string_view id,
                                std::int64_t retry_after_ms,
                                std::string_view message);

/// One parsed response (client side and tests).
struct Response {
  std::string status;  ///< "ok" | "error" | "overloaded"
  int code = 0;        ///< CLI exit-code taxonomy value
  std::string id;
  std::string payload;             ///< status "ok" only
  std::string error;               ///< status "error"/"overloaded"
  std::int64_t retry_after_ms = 0; ///< status "overloaded" only
  /// The envelope's optional "attribution" member re-serialized compact
  /// (empty when absent). Clients parse it with json::Value::parse.
  std::string attribution;

  bool ok() const { return status == "ok"; }
  bool overloaded() const { return status == "overloaded"; }
};

/// Parse a response line. Throws codesign::Error on malformed input or an
/// unknown status.
Response parse_response(std::string_view line);

}  // namespace codesign::serve
