// server.hpp — the concurrent advisory server behind `codesign serve`.
//
// A small, carefully-bounded TCP server for the newline-delimited JSON
// protocol in protocol.hpp:
//
//   * one accept thread (poll with a 50 ms tick so drain/SIGINT are
//     observed promptly), one reader thread per connection, and a fixed
//     ThreadPool of workers executing requests;
//   * admission control: at most `queue_capacity` requests admitted but
//     unfinished. Excess requests are rejected immediately on the reader
//     thread with a typed `overloaded` response carrying a retry_after_ms
//     hint — the server never queues unboundedly;
//   * one process-wide sharded EstimateCache shared by every request, so
//     repeat shape queries are warm-cache hits;
//   * per-request deadlines through CancelToken (request deadline_ms, or
//     the server default), with search truncation-banner semantics;
//   * slow-loris protection: accepted sockets are non-blocking, readers
//     poll in ticks and reap connections idle past idle_timeout_ms, and
//     each response write has a bounded deadline (write_timeout_ms) — a
//     peer that stops reading is closed and counted, never held forever;
//   * brownout load shedding: when the queue depth crosses
//     brownout_watermark, expensive ops (search, advise_many) are shed
//     with a typed code-75 rejection while cheap ops still serve;
//   * a `health` op ({ok, draining, overloaded, brownout, queue depth,
//     uptime}) that bypasses admission like stats/ping/tail;
//   * failpoint drill sites serve.accept / serve.parse / serve.dispatch,
//     plus serve.net.* in the shared socket helpers (serve/net.hpp). A
//     transient serve.dispatch fault answers as a retryable code-75
//     rejection (a FleetClient recovers it); a fatal one stays code 1;
//   * per-op latency histograms and queue-depth gauges in the obs
//     MetricsRegistry, exposed over the wire via {"op":"stats"};
//   * graceful drain (request_drain(), or SIGINT when watch_sigint): stop
//     accepting, half-close connections, finish every in-flight request,
//     flush responses, then join() returns. In-flight work is never
//     cancelled by drain — admitted requests always get their response.
//
// docs/SERVING.md documents the protocol and the knobs.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "gemmsim/estimate_cache.hpp"
#include "serve/ops.hpp"
#include "serve/protocol.hpp"
#include "serve/trace.hpp"

namespace codesign::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port, read back via Server::port().
  int port = 0;
  /// Worker threads executing requests (0 = one per hardware thread).
  std::size_t threads = 4;
  /// Admission cap: admitted-but-unfinished requests. 0 = 4 × threads.
  std::size_t queue_capacity = 0;
  /// Deadline applied to requests that do not carry deadline_ms (0 = none).
  std::int64_t default_deadline_ms = 0;
  /// Poll SigintGuard from the accept loop and drain on ^C (the CLI sets
  /// this; tests drive request_drain() directly or raise SIGINT).
  bool watch_sigint = false;
  /// A request line larger than this is answered with a usage error and
  /// the connection is closed (memory bound per connection).
  std::size_t max_line_bytes = 1 << 20;
  /// A connection with no in-flight request and no bytes received for this
  /// long is closed by its reader (slow-loris bound; 0 = never).
  std::int64_t idle_timeout_ms = 30000;
  /// Per-response write deadline. A peer that cannot absorb a response
  /// within this budget is closed and counted in slow_client_closed
  /// (0 = wait forever, the pre-resilience behaviour).
  std::int64_t write_timeout_ms = 5000;
  /// Queue depth at which expensive ops (search, advise_many) are shed
  /// with a code-75 rejection. 0 = auto: max(1, 3 × queue_capacity / 4).
  std::size_t brownout_watermark = 0;
  /// Test knob: SO_SNDBUF for accepted sockets (0 = kernel default).
  /// Shrinking it makes the write deadline reachable with small payloads.
  int sndbuf_bytes = 0;
  /// Shared estimate-cache geometry.
  gemm::CacheOptions cache;
  /// Request-scoped tracing: per-phase spans, the `tail` ring, SLO
  /// accounting (CLI --tail/--slo-p99-ms). trace.enabled = false or
  /// ring_capacity = 0 turns the whole layer off.
  TraceOptions trace;
};

/// Monotonic totals since start() (drain summary + tests).
struct ServerStats {
  std::uint64_t connections = 0;     ///< accepted
  std::uint64_t requests = 0;        ///< request lines seen
  std::uint64_t ok = 0;              ///< status "ok" responses
  std::uint64_t errors = 0;          ///< status "error" responses
  std::uint64_t overloaded = 0;      ///< typed admission rejections
  std::uint64_t parse_errors = 0;    ///< lines that failed parse_request
  std::uint64_t dropped = 0;         ///< connections lost mid-response / drills
  std::uint64_t brownout = 0;        ///< expensive ops shed at the watermark
  std::uint64_t slow_client_closed = 0;  ///< write deadline exceeded
  std::uint64_t idle_closed = 0;         ///< idle reaper closes
};

class Server {
 public:
  explicit Server(ServerOptions options) : opt_(std::move(options)) {}
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the accept thread. Throws IoError when the
  /// address cannot be bound (port in use) — exit code 7 at the CLI.
  void start();

  /// The bound port (after start(); resolves port 0 to the real one).
  int port() const { return port_; }

  /// Begin graceful drain: stop accepting, finish in-flight, then join()
  /// returns. Idempotent and callable from any thread.
  void request_drain() { draining_.store(true, std::memory_order_release); }

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Block until the server has fully drained and every thread is joined.
  /// (Drain begins via request_drain() or SIGINT under watch_sigint.)
  void join();

  ServerStats stats() const;

  /// The process-wide estimate cache (valid after start()).
  const std::shared_ptr<gemm::EstimateCache>& cache() const { return cache_; }

  /// The request-trace sink, or nullptr when tracing is disabled (valid
  /// after start(); the CLI reads the SLO summary from here at drain).
  const RequestTraceLog* trace_log() const { return trace_log_.get(); }

 private:
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    const int fd;
    std::mutex write_mu;  ///< responses are single complete lines
    /// Admitted-but-unanswered requests on this connection. The idle
    /// reaper only closes a connection when this is zero — a silent client
    /// awaiting a slow response is waiting, not loitering.
    std::atomic<int> inflight{0};
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn, std::uint64_t reader_id);
  void handle_line(const std::shared_ptr<Connection>& conn, std::string line);
  void dispatch(const std::shared_ptr<Connection>& conn, Request request,
                std::shared_ptr<RequestTrace> trace);
  bool try_admit();
  void finish_one();
  HealthInfo health_info() const;
  void write_line(Connection& conn, std::string_view line);
  std::int64_t retry_hint_ms() const;
  void publish_queue_depth() const;
  void reap_finished();

  ServerOptions opt_;
  std::shared_ptr<gemm::EstimateCache> cache_;
  std::unique_ptr<RequestTraceLog> trace_log_;
  std::unique_ptr<ThreadPool> pool_;
  int listen_fd_ = -1;
  int port_ = 0;
  bool started_ = false;
  std::size_t brownout_watermark_ = 0;  ///< resolved in start()
  std::chrono::steady_clock::time_point start_time_{};
  std::thread accept_thread_;
  std::atomic<bool> draining_{false};

  /// Admission state: requests admitted but not yet responded-to.
  std::atomic<std::size_t> pending_{0};
  /// Service-time accounting for the retry_after_ms hint.
  std::atomic<std::uint64_t> service_us_total_{0};
  std::atomic<std::uint64_t> service_count_{0};

  mutable std::mutex mu_;  ///< guards conns_, readers_, reap_, live_readers_
  std::condition_variable idle_cv_;
  std::vector<std::shared_ptr<Connection>> conns_;
  /// Live readers by id. A reader removes itself on exit (closing the
  /// connection once the last in-flight response drops its reference) and
  /// parks its thread handle in reap_, joined from the accept loop and
  /// join() — disconnected clients never accumulate fds or threads.
  std::unordered_map<std::uint64_t, std::thread> readers_;
  std::vector<std::thread> reap_;
  std::uint64_t next_reader_id_ = 0;
  std::size_t live_readers_ = 0;

  std::atomic<std::uint64_t> n_connections_{0};
  std::atomic<std::uint64_t> n_requests_{0};
  std::atomic<std::uint64_t> n_ok_{0};
  std::atomic<std::uint64_t> n_errors_{0};
  std::atomic<std::uint64_t> n_overloaded_{0};
  std::atomic<std::uint64_t> n_parse_errors_{0};
  std::atomic<std::uint64_t> n_dropped_{0};
  std::atomic<std::uint64_t> n_brownout_{0};
  std::atomic<std::uint64_t> n_slow_client_closed_{0};
  std::atomic<std::uint64_t> n_idle_closed_{0};
};

}  // namespace codesign::serve
