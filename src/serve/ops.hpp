// ops.hpp — the advisory operations behind both front doors.
//
// `codesign advise/search/gemm/explain` and the serve subsystem's
// advise/search/estimate/explain requests render through these functions,
// so a server response payload is byte-identical to the one-shot CLI's
// stdout for the same inputs (asserted by tests/test_serve.cpp). The CLI
// keeps only its flag parsing and CLI-only epilogues (cache summary,
// --metrics files, --trace capture) on top.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "advisor/report.hpp"
#include "advisor/search.hpp"
#include "common/cancel.hpp"
#include "gemmsim/simulator.hpp"
#include "serve/protocol.hpp"
#include "serve/trace.hpp"
#include "transformer/config.hpp"

namespace codesign::serve {

/// --mode=/"mode": resolved search flavour. Throws codesign::Error on an
/// unknown name (the CLI's historical message).
struct SearchModeSpec {
  bool is_mlp = false;
  advisor::SearchMode shape_mode = advisor::SearchMode::kJoint;
};
SearchModeSpec parse_search_mode(const std::string& mode);

/// The §VII-B default d_ff scan range: (8/3)h ± 25%.
void default_dff_range(const tfm::TransformerConfig& config,
                       std::int64_t* lo, std::int64_t* hi);

/// Everything one search render needs, resolved by the caller (flags or
/// request fields). `options.threads` must already be concrete (>= 1) —
/// it is printed in the banner.
struct SearchRequest {
  tfm::TransformerConfig config;
  std::string mode = "joint";           ///< joint|heads|hidden|mlp
  double radius = 0.1;
  std::int64_t dff_lo = 0, dff_hi = 0;  ///< mlp scan range (resolved)
  advisor::SearchOptions options;
};

/// The advisor report (`codesign advise`).
void render_advise(std::ostream& os, const tfm::TransformerConfig& config,
                   const gemm::GemmSimulator& sim,
                   const advisor::ReportOptions& options);

/// One-GEMM estimate summary (`codesign gemm`).
void render_estimate(std::ostream& os, const gemm::GemmProblem& problem,
                     const gemm::GemmSimulator& sim);

/// The efficiency-factor breakdown (`codesign explain`, sans --trace).
void render_explain(std::ostream& os, const gemm::GemmProblem& problem,
                    const gemm::GemmSimulator& sim);

/// Banner + ranked table + skip/retry/resume/truncation epilogue
/// (`codesign search`, sans the CLI-only cache summary). Returns the exit
/// code: kExitCancelled when the sweep was truncated, else kExitOk.
int render_search(std::ostream& os, const SearchRequest& request,
                  const gemm::GemmSimulator& sim);

/// The sweep epilogue shared by the shape and MLP tables (also used by
/// render_search). Returns kExitCancelled when truncated.
int report_sweep_outcome(std::ostream& os,
                         const std::vector<advisor::SkippedCandidate>& skipped,
                         std::size_t total, std::size_t evaluated,
                         std::size_t resumed, std::size_t retries,
                         std::size_t unreached, bool truncated,
                         CancelReason reason);

/// The server's self-assessment, rendered by the `health` op. The overall
/// status string is the most severe applicable state: "draining" >
/// "overloaded" (admission queue full) > "brownout" (expensive ops shed)
/// > "ok"; `ok` is true only for plain "ok" — a fleet client or probe can
/// branch on the bool and log the string.
struct HealthInfo {
  bool draining = false;
  bool overloaded = false;
  bool brownout = false;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::int64_t uptime_s = 0;
};

/// Server-side request execution context.
struct OpContext {
  /// The process-wide estimate cache shared across requests (may be null).
  std::shared_ptr<gemm::EstimateCache> cache;
  /// Per-request deadline token (may be null). Searches truncate with the
  /// banner; other ops throw CancelledError once it trips.
  const CancelToken* cancel = nullptr;
  /// The server's request-trace sink, read by the `tail` op. Null when
  /// tracing is disabled (tail then answers with a usage error).
  const RequestTraceLog* trace_log = nullptr;
  /// Live health snapshot, bound by the server. Null outside a server
  /// (health then answers with a usage error, like tail without tracing).
  std::function<HealthInfo()> health;
};

struct OpResult {
  int code = 0;         ///< CLI exit-code taxonomy value (0 or 6)
  std::string payload;  ///< the bytes the CLI would have printed
  /// Optional machine-readable attribution block, requested with
  /// `"attribution": true` on advise/advise_many. Compact JSON (an object
  /// for advise, an array aligned with "items" for advise_many) spliced
  /// verbatim into the response envelope; empty means absent. Kept out of
  /// `payload` so the payload ≡ CLI-stdout byte-identity contract holds
  /// whether or not attribution was requested.
  std::string attribution;
};

/// Execute one parsed request. Throws typed codesign errors for the caller
/// to map through exit_code_for_current_exception into an error response:
/// UsageError for an unknown op or malformed arguments, LookupError for
/// unknown model/GPU names, ShapeError for bad dimensions, CancelledError
/// when the deadline expired before/while rendering.
OpResult execute_op(const Request& request, const OpContext& context);

}  // namespace codesign::serve
