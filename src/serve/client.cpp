#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace codesign::serve {

ServeClient::ServeClient(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw IoError(std::string("client: socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw IoError("client: bad host address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string what = str_format("client: cannot connect to %s:%d: %s",
                                        host.c_str(), port,
                                        std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    throw IoError(what);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Response ServeClient::call(std::string_view request_line) {
  CODESIGN_CHECK(fd_ >= 0, "call() on a closed client");
  std::string line(request_line);
  if (line.empty() || line.back() != '\n') line += '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("client: send(): ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return parse_response(read_line());
}

Response ServeClient::call_op(std::string_view op,
                              std::string_view extra_members) {
  std::string request = "{\"op\":\"" + json::escape(op) + "\"";
  if (!extra_members.empty()) {
    request += ',';
    request += extra_members;
  }
  request += '}';
  return call(request);
}

std::string ServeClient::read_line() {
  char chunk[4096];
  for (;;) {
    const std::size_t nl = rx_.find('\n');
    if (nl != std::string::npos) {
      std::string line = rx_.substr(0, nl);
      rx_.erase(0, nl + 1);
      return line;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("client: recv(): ") + std::strerror(errno));
    }
    if (n == 0) {
      throw IoError("client: connection closed by server");
    }
    rx_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace codesign::serve
