#include "serve/client.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "serve/net.hpp"

namespace codesign::serve {

ServeClient::ServeClient(const std::string& host, int port,
                         ClientOptions options)
    : opt_(options) {
  try {
    fd_ = net::connect_with_timeout(host, port, opt_.connect_timeout_ms);
  } catch (const IoError& e) {
    throw IoError(std::string("client: ") + e.what());
  }
}

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Response ServeClient::call(std::string_view request_line) {
  CODESIGN_CHECK(fd_ >= 0, "call() on a closed client");
  std::string line(request_line);
  if (line.empty() || line.back() != '\n') line += '\n';
  switch (net::timed_send_all(fd_, line, opt_.write_timeout_ms)) {
    case net::SendOutcome::kOk:
      break;
    case net::SendOutcome::kTimeout:
      throw IoError(str_format("client: send timed out after %lld ms",
                               static_cast<long long>(opt_.write_timeout_ms)));
    case net::SendOutcome::kPeerGone:
      throw IoError("client: connection lost while sending the request");
  }
  const std::string response_line = read_line();
  try {
    return parse_response(response_line);
  } catch (const Error& e) {
    // A garbled response line is a transport-level failure, not a caller
    // bug: surface it as IoError (exit 7, like a dead connection) so the
    // exit-code taxonomy survives talking to a mismatched server. Typed
    // server-side errors (e.g. "unknown op" from a server predating an op
    // this client knows) never take this path — they arrive as well-formed
    // "error" envelopes and keep their own codes.
    throw IoError(std::string("client: ") + e.what());
  }
}

Response ServeClient::call_op(std::string_view op,
                              std::string_view extra_members) {
  std::string request = "{\"op\":\"" + json::escape(op) + "\"";
  if (!extra_members.empty()) {
    request += ',';
    request += extra_members;
  }
  request += '}';
  return call(request);
}

std::string ServeClient::read_line() {
  char chunk[4096];
  for (;;) {
    const std::size_t nl = rx_.find('\n');
    if (nl != std::string::npos) {
      std::string line = rx_.substr(0, nl);
      rx_.erase(0, nl + 1);
      return line;
    }
    ssize_t n;
    try {
      n = net::timed_recv(fd_, chunk, sizeof(chunk), opt_.read_timeout_ms);
    } catch (const IoError& e) {
      throw IoError(std::string("client: ") + e.what());
    }
    if (n < 0) {
      throw IoError(str_format("client: no response within %lld ms",
                               static_cast<long long>(opt_.read_timeout_ms)));
    }
    if (n == 0) {
      throw IoError("client: connection closed by server");
    }
    rx_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace codesign::serve
