#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace codesign::serve {

Request parse_request(std::string_view line) {
  json::Value doc;
  try {
    doc = json::Value::parse(line);
  } catch (const Error& e) {
    throw UsageError(std::string("bad request: ") + e.what());
  }
  if (!doc.is_object()) {
    throw UsageError("bad request: a request must be a JSON object");
  }
  Request req;
  const json::Value* op = doc.get("op");
  if (op == nullptr || !op->is_string()) {
    throw UsageError("bad request: missing string field \"op\"");
  }
  req.op = op->as_string();
  try {
    req.id = doc.string_or("id", "");
    req.deadline_ms = static_cast<std::int64_t>(doc.number_or("deadline_ms", 0.0));
  } catch (const Error& e) {
    throw UsageError(std::string("bad request: ") + e.what());
  }
  if (req.deadline_ms < 0) {
    throw UsageError("bad request: deadline_ms must be >= 0");
  }
  req.body = std::move(doc);
  return req;
}

namespace {

/// Shared envelope head: {"status":...,"code":N[,"id":...]
void begin_envelope(json::Writer& w, std::string_view status, int code,
                    std::string_view id) {
  w.begin_object();
  w.member("status", status);
  w.member("code", code);
  if (!id.empty()) w.member("id", id);
}

}  // namespace

std::string ok_response(std::string_view id, int code,
                        std::string_view payload,
                        std::string_view attribution) {
  std::ostringstream os;
  json::Writer w(os);
  begin_envelope(w, "ok", code, id);
  w.member("payload", payload);
  if (!attribution.empty()) {
    // Pre-rendered compact JSON from the op layer; spliced verbatim. It
    // must not contain raw newlines — the protocol frames on them.
    w.key("attribution").raw(attribution);
  }
  w.end_object();
  os << '\n';
  return os.str();
}

std::string error_response(std::string_view id, int code,
                           std::string_view message) {
  std::ostringstream os;
  json::Writer w(os);
  begin_envelope(w, "error", code, id);
  w.member("error", message);
  w.end_object();
  os << '\n';
  return os.str();
}

std::string overloaded_response(std::string_view id,
                                std::int64_t retry_after_ms,
                                std::string_view message) {
  std::ostringstream os;
  json::Writer w(os);
  begin_envelope(w, "overloaded", kExitUnavailable, id);
  w.member("retry_after_ms", retry_after_ms);
  w.member("error", message);
  w.end_object();
  os << '\n';
  return os.str();
}

Response parse_response(std::string_view line) {
  json::Value doc;
  try {
    doc = json::Value::parse(line);
  } catch (const Error& e) {
    throw Error(std::string("bad response: ") + e.what());
  }
  if (!doc.is_object()) {
    throw Error("bad response: a response must be a JSON object");
  }
  Response r;
  r.status = doc.at("status").as_string();
  if (r.status != "ok" && r.status != "error" && r.status != "overloaded") {
    throw Error("bad response: unknown status '" + r.status + "'");
  }
  const double code = doc.at("code").as_number();
  r.code = static_cast<int>(code);
  r.id = doc.string_or("id", "");
  r.payload = doc.string_or("payload", "");
  r.error = doc.string_or("error", "");
  if (const json::Value* attribution = doc.get("attribution")) {
    r.attribution = json::dump(*attribution);
  }
  r.retry_after_ms =
      static_cast<std::int64_t>(doc.number_or("retry_after_ms", 0.0));
  return r;
}

}  // namespace codesign::serve
