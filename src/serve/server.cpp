#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/strings.hpp"
#include "obs/metrics.hpp"
#include "serve/net.hpp"

namespace codesign::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Reader poll tick: how often an otherwise-silent reader wakes to check
/// the idle deadline (and, during drain, notices the SHUT_RD promptly).
constexpr std::int64_t kReaderTickMs = 100;

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

bool is_expensive_op(const std::string& op) {
  return op == "search" || op == "advise_many" || op == "sweep";
}

void bump_counter(const char* name) {
  if (!obs::MetricsRegistry::enabled()) return;
  obs::MetricsRegistry::global()
      .counter(name, {}, obs::Stability::kBestEffort)
      .add();
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::~Server() {
  if (!started_) return;
  request_drain();
  join();
}

void Server::start() {
  CODESIGN_CHECK(!started_, "server already started");
  if (opt_.threads == 0) opt_.threads = ThreadPool::hardware_threads();
  if (opt_.queue_capacity == 0) opt_.queue_capacity = 4 * opt_.threads;
  brownout_watermark_ = opt_.brownout_watermark > 0
                            ? opt_.brownout_watermark
                            : std::max<std::size_t>(1, 3 * opt_.queue_capacity / 4);
  start_time_ = Clock::now();
  cache_ = std::make_shared<gemm::EstimateCache>(opt_.cache);
  if (opt_.trace.enabled && opt_.trace.ring_capacity > 0) {
    trace_log_ = std::make_unique<RequestTraceLog>(opt_.trace);
  }
  pool_ = std::make_unique<ThreadPool>(opt_.threads);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("serve: socket()");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opt_.port));
  if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("serve: bad listen address '" + opt_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string what = str_format("serve: cannot bind %s:%d",
                                        opt_.host.c_str(), opt_.port);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno(what);
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("serve: listen()");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("serve: getsockname()");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));

  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    if (draining()) break;
    if (opt_.watch_sigint && SigintGuard::interrupted()) {
      request_drain();
      break;
    }
    reap_finished();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 50);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket failed; drain whatever is in flight
    }
    if (pr == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Fd pressure is transient (in-flight responses release fds as
        // they complete) — back off and keep the listener alive.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        continue;
      }
      break;
    }
    n_connections_.fetch_add(1, std::memory_order_relaxed);
    try {
      CODESIGN_FAILPOINT("serve.accept");
    } catch (const fail::InjectedFault&) {
      // Fault drill: the connection is dropped before a reader exists —
      // clients observe a reset, exactly like an accept-path crash.
      ::close(fd);
      n_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (opt_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opt_.sndbuf_bytes,
                   sizeof(opt_.sndbuf_bytes));
    }
    // Non-blocking from birth: the reader polls in ticks (idle reaping)
    // and the write path needs send() to return EAGAIN so the per-response
    // deadline in net::timed_send_all is enforceable.
    try {
      net::set_nonblocking(fd, true);
    } catch (const IoError&) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t id = next_reader_id_++;
    conns_.push_back(conn);
    ++live_readers_;
    readers_.emplace(id, std::thread([this, conn, id] {
                       reader_loop(std::move(conn), id);
                     }));
  }
  // Stop accepting: refuse new connections for the rest of the drain.
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::reap_finished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    done.swap(reap_);
  }
  for (std::thread& t : done) t.join();
}

void Server::reader_loop(std::shared_ptr<Connection> conn,
                         std::uint64_t reader_id) {
  std::string buf;
  char chunk[4096];
  Clock::time_point last_activity = Clock::now();
  for (;;) {
    ssize_t n;
    try {
      n = net::timed_recv(conn->fd, chunk, sizeof(chunk), kReaderTickMs);
    } catch (const IoError&) {
      break;  // connection reset or comparable; reap below
    }
    if (n < 0) {
      // Tick with no bytes: reap the connection once it has been silent
      // with nothing in flight for the idle budget (slow-loris bound).
      if (opt_.idle_timeout_ms > 0 &&
          conn->inflight.load(std::memory_order_acquire) == 0 &&
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Clock::now() - last_activity)
                  .count() >= opt_.idle_timeout_ms) {
        n_idle_closed_.fetch_add(1, std::memory_order_relaxed);
        bump_counter("serve.idle_closed");
        ::shutdown(conn->fd, SHUT_RDWR);
        break;
      }
      continue;
    }
    if (n == 0) break;  // client EOF, or our SHUT_RD during drain
    last_activity = Clock::now();
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handle_line(conn, std::move(line));
    }
    if (buf.size() > opt_.max_line_bytes) {
      n_parse_errors_.fetch_add(1, std::memory_order_relaxed);
      n_errors_.fetch_add(1, std::memory_order_relaxed);
      write_line(*conn, error_response(
                            "", kExitUsage,
                            str_format("request line exceeds %zu bytes",
                                       opt_.max_line_bytes)));
      // The contract for max_line_bytes is "the connection is closed":
      // half-close both directions so the client observes EOF now rather
      // than at server drain. The fd itself closes via the reaping path.
      ::shutdown(conn->fd, SHUT_RDWR);
      break;
    }
  }
  // Reap-on-exit: drop this connection and park the thread handle for an
  // opportunistic join. The fd closes when the last reference (possibly an
  // in-flight dispatch still writing its response) releases the Connection.
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
                 conns_.end());
    auto it = readers_.find(reader_id);
    if (it != readers_.end()) {
      reap_.push_back(std::move(it->second));
      readers_.erase(it);
    }
    --live_readers_;
  }
  conn.reset();
  idle_cv_.notify_all();
}

bool Server::try_admit() {
  std::size_t cur = pending_.load(std::memory_order_relaxed);
  while (cur < opt_.queue_capacity) {
    if (pending_.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_acq_rel)) {
      publish_queue_depth();
      return true;
    }
  }
  return false;
}

void Server::finish_one() {
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  publish_queue_depth();
  idle_cv_.notify_all();
}

void Server::publish_queue_depth() const {
  if (!obs::MetricsRegistry::enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  const auto depth =
      static_cast<double>(pending_.load(std::memory_order_relaxed));
  reg.gauge("serve.queue_depth", {}, obs::Stability::kBestEffort).set(depth);
  reg.gauge("serve.queue_depth.max", {}, obs::Stability::kBestEffort)
      .update_max(depth);
}

std::int64_t Server::retry_hint_ms() const {
  // Expected time for the backlog to clear: pending × average service time
  // (10 ms prior before any request completed). Best-effort — a hint, not
  // a promise.
  const std::uint64_t done = service_count_.load(std::memory_order_relaxed);
  const double avg_ms =
      done == 0 ? 10.0
                : static_cast<double>(
                      service_us_total_.load(std::memory_order_relaxed)) /
                      (1000.0 * static_cast<double>(done));
  const double backlog =
      static_cast<double>(pending_.load(std::memory_order_relaxed));
  const double hint = avg_ms * backlog / static_cast<double>(opt_.threads);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(hint));
}

void Server::handle_line(const std::shared_ptr<Connection>& conn,
                         std::string line) {
  n_requests_.fetch_add(1, std::memory_order_relaxed);
  // The trace is born on the reader thread before parsing, so parse time
  // and queue wait are part of the request's phase breakdown.
  std::shared_ptr<RequestTrace> trace;
  if (trace_log_) trace = trace_log_->begin_request();

  Request request;
  try {
    ScopedPhase parse_span(trace.get(), Phase::kParse);
    CODESIGN_FAILPOINT("serve.parse");
    request = parse_request(line);
  } catch (const std::exception& e) {
    const int code = exit_code_for_current_exception();
    n_parse_errors_.fetch_add(1, std::memory_order_relaxed);
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    std::string response;
    {
      ScopedPhase render_span(trace.get(), Phase::kRender);
      response = error_response("", code, e.what());
    }
    {
      ScopedPhase write_span(trace.get(), Phase::kWrite);
      write_line(*conn, response);
    }
    if (trace) {
      RequestRecord& rec = trace->record();
      rec.op = "?";
      rec.status = "error";
      rec.code = code;
      rec.error = e.what();
      rec.error_phase = "parse";
      trace_log_->finish(*trace);
    }
    return;
  }
  if (trace) {
    trace->record().id = request.id;
    trace->record().op = request.op;
  }

  // Introspection ops bypass admission control: stats must answer even
  // when the queue is full, ping is the liveness probe, and tail and
  // health have to be readable exactly when the server is saturated.
  if (request.op == "stats" || request.op == "ping" || request.op == "tail" ||
      request.op == "health") {
    publish_queue_depth();
    std::string status = "ok";
    int code = kExitOk;
    std::string error, error_phase, response;
    try {
      OpResult r;
      {
        ScopedPhase exec_span(trace.get(), Phase::kExecute);
        OpContext context{cache_, nullptr, trace_log_.get(), {}};
        context.health = [this] { return health_info(); };
        r = execute_op(request, context);
      }
      code = r.code;
      n_ok_.fetch_add(1, std::memory_order_relaxed);
      ScopedPhase render_span(trace.get(), Phase::kRender);
      response = ok_response(request.id, r.code, r.payload, r.attribution);
    } catch (const std::exception& e) {
      status = "error";
      code = exit_code_for_current_exception();
      error = e.what();
      error_phase = "execute";
      n_errors_.fetch_add(1, std::memory_order_relaxed);
      ScopedPhase render_span(trace.get(), Phase::kRender);
      response = error_response(request.id, code, e.what());
    }
    {
      ScopedPhase write_span(trace.get(), Phase::kWrite);
      write_line(*conn, response);
    }
    if (trace) {
      RequestRecord& rec = trace->record();
      rec.status = status;
      rec.code = code;
      rec.error = error;
      rec.error_phase = error_phase;
      trace_log_->finish(*trace);
    }
    return;
  }

  if (draining()) {
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    {
      ScopedPhase write_span(trace.get(), Phase::kWrite);
      write_line(*conn,
                 error_response(request.id, kExitUnavailable,
                                "server is draining; connection will close"));
    }
    if (trace) {
      RequestRecord& rec = trace->record();
      rec.status = "error";
      rec.code = kExitUnavailable;
      rec.error = "server is draining; connection will close";
      rec.error_phase = "admission";
      trace_log_->finish(*trace);
    }
    return;
  }
  // Brownout: past the high-water mark the server sheds its expensive ops
  // (search, advise_many) with the same typed, retryable rejection as a
  // full queue — cheap ops keep flowing, so a fleet under pressure
  // degrades to reduced service instead of rejecting everything at the
  // (higher) admission cap.
  if (is_expensive_op(request.op) &&
      pending_.load(std::memory_order_acquire) >= brownout_watermark_) {
    n_brownout_.fetch_add(1, std::memory_order_relaxed);
    n_overloaded_.fetch_add(1, std::memory_order_relaxed);
    bump_counter("serve.rejected.brownout");
    const std::string detail = str_format(
        "server brownout: op '%s' shed at queue depth %zu (watermark %zu); "
        "retry later or on a sibling",
        request.op.c_str(), pending_.load(std::memory_order_relaxed),
        brownout_watermark_);
    {
      ScopedPhase write_span(trace.get(), Phase::kWrite);
      write_line(*conn,
                 overloaded_response(request.id, retry_hint_ms(), detail));
    }
    if (trace) {
      RequestRecord& rec = trace->record();
      rec.status = "overloaded";
      rec.code = kExitUnavailable;
      rec.error = detail;
      rec.error_phase = "admission";
      trace_log_->finish(*trace);
    }
    return;
  }
  if (!try_admit()) {
    n_overloaded_.fetch_add(1, std::memory_order_relaxed);
    if (obs::MetricsRegistry::enabled()) {
      obs::MetricsRegistry::global()
          .counter("serve.rejected.overload", {}, obs::Stability::kBestEffort)
          .add();
    }
    const std::string detail =
        str_format("server overloaded: %zu requests in flight (capacity %zu)",
                   pending_.load(std::memory_order_relaxed),
                   opt_.queue_capacity);
    {
      ScopedPhase write_span(trace.get(), Phase::kWrite);
      write_line(*conn,
                 overloaded_response(request.id, retry_hint_ms(), detail));
    }
    if (trace) {
      RequestRecord& rec = trace->record();
      rec.status = "overloaded";
      rec.code = kExitUnavailable;
      rec.error = detail;
      rec.error_phase = "admission";
      trace_log_->finish(*trace);
    }
    return;
  }
  dispatch(conn, std::move(request), std::move(trace));
}

void Server::dispatch(const std::shared_ptr<Connection>& conn,
                      Request request, std::shared_ptr<RequestTrace> trace) {
  // The token outlives the lambda via shared_ptr; the deadline starts at
  // admission so queueing time counts against the budget.
  auto cancel = std::make_shared<CancelToken>();
  const std::int64_t deadline_ms =
      request.deadline_ms > 0 ? request.deadline_ms : opt_.default_deadline_ms;
  if (deadline_ms > 0) {
    cancel->deadline_after(std::chrono::milliseconds(deadline_ms));
  }
  // queue_wait spans admission to worker pickup; stamped here because the
  // ScopedPhase pattern cannot straddle the thread hop.
  const double admit_us = trace ? trace_log_->now_us() : 0.0;
  conn->inflight.fetch_add(1, std::memory_order_acq_rel);
  pool_->submit([this, conn, request = std::move(request), cancel, trace,
                 admit_us] {
    // finish_one() must run on every exit path — if response writing or
    // metrics recording throws, ThreadPool::submit swallows it and a
    // missed decrement would wedge drain Phase 3 forever. The connection
    // inflight count drops with it so the idle reaper never closes a
    // connection that is still owed a response.
    struct FinishGuard {
      Server* server;
      Connection* conn;
      ~FinishGuard() {
        conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
        server->finish_one();
      }
    } finish_guard{this, conn.get()};
    if (trace) {
      trace->add_phase(Phase::kQueueWait, trace_log_->now_us() - admit_us);
    }
    const auto t0 = Clock::now();
    std::string status = "ok";
    int code = kExitOk;
    std::string error, error_phase, response;
    obs::RequestScopeCounters work;
    try {
      OpResult r;
      {
        ScopedPhase exec_span(trace.get(), Phase::kExecute);
        // Bind request attribution only when tracing: the estimator and
        // search hot paths fold their counts into `work` via
        // obs::RequestScope::current().
        obs::RequestScope::Bind bind(trace ? &work : nullptr);
        CODESIGN_FAILPOINT("serve.dispatch");
        OpContext context{cache_, cancel.get(), trace_log_.get(), {}};
        context.health = [this] { return health_info(); };
        r = execute_op(request, context);
      }
      code = r.code;
      n_ok_.fetch_add(1, std::memory_order_relaxed);
      ScopedPhase render_span(trace.get(), Phase::kRender);
      response = ok_response(request.id, r.code, r.payload, r.attribution);
    } catch (const fail::InjectedFault& e) {
      // A transient injected fault models a recoverable blip (the thing a
      // retry is *for*), so it answers as a typed retryable rejection —
      // FleetClient absorbs it and the chaos drill sees zero user-visible
      // errors. A fatal fault stays a hard code-1 error.
      if (e.transient()) {
        status = "overloaded";
        code = kExitUnavailable;
        error = e.what();
        error_phase = "execute";
        n_overloaded_.fetch_add(1, std::memory_order_relaxed);
        ScopedPhase render_span(trace.get(), Phase::kRender);
        response = overloaded_response(request.id, retry_hint_ms(), e.what());
      } else {
        status = "error";
        code = kExitError;
        error = e.what();
        error_phase = "execute";
        n_errors_.fetch_add(1, std::memory_order_relaxed);
        ScopedPhase render_span(trace.get(), Phase::kRender);
        response = error_response(request.id, code, e.what());
      }
    } catch (const std::exception& e) {
      status = "error";
      code = exit_code_for_current_exception();
      error = e.what();
      error_phase = "execute";
      n_errors_.fetch_add(1, std::memory_order_relaxed);
      ScopedPhase render_span(trace.get(), Phase::kRender);
      response = error_response(request.id, code, e.what());
    } catch (...) {
      status = "error";
      code = kExitInternal;
      error = "internal error: unknown exception";
      error_phase = "execute";
      n_errors_.fetch_add(1, std::memory_order_relaxed);
      ScopedPhase render_span(trace.get(), Phase::kRender);
      response = error_response(request.id, kExitInternal, error);
    }
    {
      ScopedPhase write_span(trace.get(), Phase::kWrite);
      write_line(*conn, response);
    }
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - t0)
                        .count();
    service_us_total_.fetch_add(static_cast<std::uint64_t>(us),
                                std::memory_order_relaxed);
    service_count_.fetch_add(1, std::memory_order_relaxed);
    if (trace) {
      RequestRecord& rec = trace->record();
      rec.status = status;
      rec.code = code;
      rec.error = error;
      rec.error_phase = error_phase;
      rec.estimates = work.estimates;
      rec.search_candidates = work.search_candidates;
      rec.deadline_missed = cancel->cancelled() &&
                            cancel->reason() == CancelReason::kDeadline;
      // finish() records serve.requests / serve.request_us with the same
      // (name, labels) as the legacy inline path below — one or the other
      // runs, never both.
      trace_log_->finish(*trace);
    } else if (obs::MetricsRegistry::enabled()) {
      auto& reg = obs::MetricsRegistry::global();
      const std::string labels = "op=" + request.op;
      reg.counter("serve.requests", labels, obs::Stability::kBestEffort).add();
      reg.histogram("serve.request_us", labels, obs::Stability::kBestEffort)
          .record(static_cast<double>(us));
    }
  });
}

void Server::write_line(Connection& conn, std::string_view line) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  switch (net::timed_send_all(conn.fd, line, opt_.write_timeout_ms)) {
    case net::SendOutcome::kOk:
      return;
    case net::SendOutcome::kTimeout:
      // The peer stopped reading and our deadline elapsed: a stalled
      // client must not pin a worker (or the drain) forever. Close it —
      // the reader observes the shutdown and reaps the connection.
      n_slow_client_closed_.fetch_add(1, std::memory_order_relaxed);
      bump_counter("serve.slow_client_closed");
      ::shutdown(conn.fd, SHUT_RDWR);
      return;
    case net::SendOutcome::kPeerGone:
      // Client went away mid-response; the request still completed.
      n_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
  }
}

HealthInfo Server::health_info() const {
  HealthInfo h;
  h.draining = draining();
  h.queue_depth = pending_.load(std::memory_order_acquire);
  h.queue_capacity = opt_.queue_capacity;
  h.overloaded = h.queue_depth >= opt_.queue_capacity;
  h.brownout = h.queue_depth >= brownout_watermark_;
  h.uptime_s = std::chrono::duration_cast<std::chrono::seconds>(Clock::now() -
                                                                start_time_)
                   .count();
  return h;
}

void Server::join() {
  CODESIGN_CHECK(started_, "join() before start()");
  // Phase 1: the accept thread exits once drain is requested (SIGINT under
  // watch_sigint, or request_drain()) and closes the listening socket.
  if (accept_thread_.joinable()) accept_thread_.join();

  // Phase 2: half-close every connection for reading. Readers wake with
  // recv() == 0 and stop feeding new requests; in-flight responses still
  // go out over the intact write side.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& c : conns_) ::shutdown(c->fd, SHUT_RD);
  }

  // Phase 3: wait for every admitted request to finish and every reader
  // to exit (wait_for: finish_one notifies without holding mu_).
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait_for(lock, std::chrono::milliseconds(10), [this] {
      return pending_.load(std::memory_order_acquire) == 0 &&
             live_readers_ == 0;
    });
    while (pending_.load(std::memory_order_acquire) != 0 ||
           live_readers_ != 0) {
      idle_cv_.wait_for(lock, std::chrono::milliseconds(10));
    }
  }

  // Phase 4: join workers and readers (live and reaped), then close any
  // connections still open.
  pool_.reset();
  std::unordered_map<std::uint64_t, std::thread> readers;
  std::vector<std::thread> reaped;
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    readers.swap(readers_);
    reaped.swap(reap_);
    conns.swap(conns_);
  }
  for (auto& [id, t] : readers) t.join();
  for (std::thread& t : reaped) t.join();
  conns.clear();  // destructors close the fds

  // Phase 5: flush the final metrics state.
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.gauge("serve.queue_depth", {}, obs::Stability::kBestEffort).set(0.0);
    reg.counter("serve.drained", {}, obs::Stability::kBestEffort).add();
    if (cache_) cache_->publish_metrics(reg);
  }
  started_ = false;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections = n_connections_.load(std::memory_order_relaxed);
  s.requests = n_requests_.load(std::memory_order_relaxed);
  s.ok = n_ok_.load(std::memory_order_relaxed);
  s.errors = n_errors_.load(std::memory_order_relaxed);
  s.overloaded = n_overloaded_.load(std::memory_order_relaxed);
  s.parse_errors = n_parse_errors_.load(std::memory_order_relaxed);
  s.dropped = n_dropped_.load(std::memory_order_relaxed);
  s.brownout = n_brownout_.load(std::memory_order_relaxed);
  s.slow_client_closed = n_slow_client_closed_.load(std::memory_order_relaxed);
  s.idle_closed = n_idle_closed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace codesign::serve
