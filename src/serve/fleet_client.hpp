// fleet_client.hpp — the resilient, fleet-aware client for codesign serve.
//
// A FleetClient fronts N server endpoints and gives every call() a
// bounded, deterministic retry story:
//
//   * per-attempt connect/read/write timeouts (serve/net.hpp), so no
//     single flaky endpoint can hang a call;
//   * a per-call deadline budget: attempts + backoffs never exceed
//     call_deadline_ms in total;
//   * jittered exponential backoff between retry *rounds* (a round = one
//     pass over the available endpoints). The jitter comes from a seeded
//     xoshiro Rng, so two clients with the same seed and the same fault
//     pattern produce identical attempt logs — asserted by
//     tests/test_fleet_client.cpp. A server's retry_after_ms hint raises
//     the backoff floor for the round that observed it;
//   * sibling failover: an `overloaded` rejection (code 75, including the
//     server's brownout shed and transient injected dispatch faults) or a
//     connection death moves the *next* attempt to the next endpoint
//     immediately — the sibling is not the one that is busy;
//   * a per-endpoint circuit breaker: `failure_threshold` consecutive
//     IoError/overloaded outcomes open the breaker; after open_ms the
//     endpoint is probed half-open; a success closes it, a failure
//     re-opens it. Open endpoints are skipped by endpoint selection, so a
//     dead replica costs one connect timeout per cooldown, not per call;
//   * reconnect-on-broken-pipe: connections are cached per endpoint and
//     rebuilt after any I/O failure.
//
// Failover re-sends the request, so callers must only route idempotent
// operations through a FleetClient. Every operation on the advisory
// surface (advise/advise_many/search/estimate/explain/stats/health/ping/
// tail/sleep) is idempotent — responses are pure functions of the request
// — which is why codesign-client --endpoints can use it unconditionally.
//
// Not thread-safe: one FleetClient per thread (they may share endpoints;
// breakers are per-client state, like a browser's per-tab backoff).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"

namespace codesign::serve {

struct FleetEndpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

/// Parse "host:port,host:port,..." (host defaults to 127.0.0.1 when an
/// entry is just a port). Throws UsageError on malformed entries.
std::vector<FleetEndpoint> parse_endpoints(std::string_view spec);

struct BreakerOptions {
  /// Consecutive failures (IoError or overloaded) that open the breaker.
  int failure_threshold = 3;
  /// Cooldown before an open endpoint is probed half-open.
  std::int64_t open_ms = 1000;
};

struct FleetOptions {
  std::vector<FleetEndpoint> endpoints;
  /// Per-attempt I/O budgets (0 read/write = wait forever).
  std::int64_t connect_timeout_ms = 1000;
  std::int64_t read_timeout_ms = 30000;
  std::int64_t write_timeout_ms = 5000;
  /// Total per-call budget across attempts and backoffs (0 = unbounded).
  std::int64_t call_deadline_ms = 30000;
  /// Hard cap on attempts per call (safety net under the deadline).
  int max_attempts = 16;
  /// Backoff schedule between retry rounds: min(base << round, max),
  /// jittered into [b/2, b], floored at the round's retry_after_ms hint.
  std::int64_t backoff_base_ms = 5;
  std::int64_t backoff_max_ms = 500;
  /// Seed for the jitter Rng — same seed, same fault pattern, same
  /// attempt log.
  std::uint64_t seed = 1;
  BreakerOptions breaker;
  /// Test seams: a fake clock and a fake sleep make retry schedules and
  /// breaker transitions instant and exactly reproducible. Defaults are
  /// steady_clock and this_thread::sleep_for.
  std::function<std::int64_t()> now_ms;
  std::function<void(std::int64_t)> sleep_ms;
};

enum class AttemptOutcome {
  kOk,          ///< a non-retryable response came back (success or error)
  kIoError,     ///< connect/read/write failed or the connection died
  kOverloaded,  ///< a retryable code-75 response (admission or brownout)
};

const char* attempt_outcome_name(AttemptOutcome o);

/// One entry in a call's attempt log (deterministic given seed + faults).
struct FleetAttempt {
  std::size_t endpoint = 0;
  AttemptOutcome outcome = AttemptOutcome::kOk;
  std::int64_t backoff_ms = 0;      ///< sleep taken *after* this attempt
  std::int64_t retry_after_ms = 0;  ///< server hint when overloaded
};

/// Monotonic per-client totals (bench columns and tests).
struct FleetStats {
  std::uint64_t calls = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;        ///< attempts beyond the first, per call
  std::uint64_t failovers = 0;      ///< attempts moved to a sibling
  std::uint64_t io_errors = 0;
  std::uint64_t overloaded_seen = 0;
  std::uint64_t breaker_trips = 0;  ///< closed/half-open -> open edges
  std::uint64_t reconnects = 0;     ///< connections rebuilt after failure
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState s);

class FleetClient {
 public:
  explicit FleetClient(FleetOptions options);
  ~FleetClient();

  FleetClient(const FleetClient&) = delete;
  FleetClient& operator=(const FleetClient&) = delete;

  /// Send one request line, retrying per the policy above. Returns the
  /// first non-retryable response (ok *or* a typed error — a ShapeError is
  /// not retried). When the budget runs out while every outcome is still
  /// retryable: returns the last overloaded response if one was seen,
  /// otherwise throws IoError describing the attempts.
  Response call(std::string_view request_line);

  /// Build-and-call convenience, mirroring ServeClient::call_op.
  Response call_op(std::string_view op, std::string_view extra_members = {});

  const FleetStats& stats() const { return stats_; }

  /// The previous call()'s attempt-by-attempt record.
  const std::vector<FleetAttempt>& last_attempts() const { return attempts_; }

  /// One line per attempt ("attempt 0: endpoint 1 overloaded "
  /// "(retry_after 12 ms) backoff 12ms"), identical across same-seed runs.
  std::string attempt_log() const;

  BreakerState breaker_state(std::size_t endpoint) const;

  std::size_t endpoint_count() const { return endpoints_.size(); }

  /// Drop every cached connection (breaker state is kept).
  void close();

 private:
  struct EndpointState {
    FleetEndpoint addr;
    std::unique_ptr<ServeClient> conn;
    bool ever_connected = false;
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    std::int64_t opened_at_ms = 0;
  };

  std::int64_t now_ms() const { return opt_.now_ms(); }
  /// Next usable endpoint at/after `from`, transitioning open breakers to
  /// half-open once their cooldown elapsed. Returns endpoint count when
  /// every breaker is open and cold.
  std::size_t pick_endpoint(std::size_t from);
  void record_success(EndpointState& ep);
  void record_failure(EndpointState& ep);
  std::int64_t jittered_backoff(int round, std::int64_t floor_ms);

  FleetOptions opt_;
  std::vector<EndpointState> endpoints_;
  std::size_t cursor_ = 0;  ///< round-robin start for the next call
  Rng rng_;
  FleetStats stats_;
  std::vector<FleetAttempt> attempts_;
};

}  // namespace codesign::serve
