// client.hpp — a small blocking client for the codesign serve protocol.
//
// One connection, synchronous request/response: call() writes a request
// line and blocks for the matching response line. Used by the
// codesign-client CLI, the bench_serve_throughput load generator, and the
// serve tests. Connection-level failures (refused, reset, EOF mid-read)
// throw IoError; protocol-level failures come back as parsed Response
// envelopes with status "error"/"overloaded".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/protocol.hpp"

namespace codesign::serve {

class ServeClient {
 public:
  /// Connect (IPv4 dotted host). Throws IoError when the server is not
  /// there — exit code 7 at the CLI.
  ServeClient(const std::string& host, int port);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Send one request line (a '\n' is appended when missing) and block for
  /// its response. Throws IoError if the connection dies first.
  Response call(std::string_view request_line);

  /// Build-and-call convenience: op plus already-rendered JSON members
  /// ("\"model\":\"gpt3-2.7b\",\"deadline_ms\":50"). Empty extra sends
  /// {"op":...} alone.
  Response call_op(std::string_view op, std::string_view extra_members = {});

  void close();

 private:
  std::string read_line();

  int fd_ = -1;
  std::string rx_;
};

}  // namespace codesign::serve
