// client.hpp — a small blocking client for the codesign serve protocol.
//
// One connection, synchronous request/response: call() writes a request
// line and blocks for the matching response line. Used by the
// codesign-client CLI, the bench_serve_throughput load generator, the
// FleetClient (one ServeClient per endpoint), and the serve tests.
// Connection-level failures (refused, reset, EOF mid-read, a timed-out
// connect/read/write) throw IoError; protocol-level failures come back as
// parsed Response envelopes with status "error"/"overloaded".
//
// All socket I/O goes through serve/net.hpp: the connect is poll-based
// with a default 5 s timeout (a black-holed endpoint can no longer hang
// the caller forever), and reads/writes take optional per-call budgets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/protocol.hpp"

namespace codesign::serve {

/// Per-connection I/O budgets. 0 = wait forever (reads/writes only —
/// connects always have a finite timeout).
struct ClientOptions {
  std::int64_t connect_timeout_ms = 5000;
  std::int64_t read_timeout_ms = 0;   ///< per call(), response wait
  std::int64_t write_timeout_ms = 0;  ///< per call(), request flush
};

class ServeClient {
 public:
  /// Connect (IPv4 dotted host). Throws IoError when the server is not
  /// there or the connect times out — exit code 7 at the CLI.
  ServeClient(const std::string& host, int port, ClientOptions options = {});
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Send one request line (a '\n' is appended when missing) and block for
  /// its response, up to the configured read/write budgets. Throws IoError
  /// if the connection dies or a budget expires first.
  Response call(std::string_view request_line);

  /// Build-and-call convenience: op plus already-rendered JSON members
  /// ("\"model\":\"gpt3-2.7b\",\"deadline_ms\":50"). Empty extra sends
  /// {"op":...} alone.
  Response call_op(std::string_view op, std::string_view extra_members = {});

  void close();

 private:
  std::string read_line();

  ClientOptions opt_;
  int fd_ = -1;
  std::string rx_;
};

}  // namespace codesign::serve
