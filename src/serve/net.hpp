// net.hpp — timeout-aware socket helpers shared by every serve endpoint.
//
// Both sides of the wire (ServeClient / FleetClient on one end, the
// Server's reader and writer paths on the other) funnel their socket I/O
// through these helpers so that
//   * no call ever blocks unboundedly: connects, reads, and writes all
//     take explicit millisecond budgets (0 / negative = wait forever,
//     still via poll so EINTR and drills behave identically), and
//   * the three network failpoints live in exactly one place:
//       serve.net.read_stall   sleep kReadStallMs before a ready read
//                              (slow-network / slow-peer simulation)
//       serve.net.conn_close   shutdown(SHUT_RDWR) before a ready read —
//                              the peer observes a clean connection death
//       serve.net.write_drop   shutdown(SHUT_RDWR) instead of writing —
//                              the response vanishes mid-flight
//     Armed in a server process they simulate a flaky fleet; armed in a
//     client process they simulate a flaky edge. Either way the fault is
//     a *transport* fault (EOF / reset), never a corrupted byte stream,
//     so retries can assert byte-identical payloads.
//
// Sockets produced by connect_with_timeout (and the server's accepted
// fds) are non-blocking; the helpers supply the blocking behaviour via
// poll, which is what makes the write deadline enforceable at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <sys/types.h>

namespace codesign::serve::net {

/// How long serve.net.read_stall pauses a ready read when it fires.
inline constexpr std::int64_t kReadStallMs = 40;

/// Poll `fd` for readability/writability. Returns true when ready (or on
/// POLLERR/POLLHUP — the subsequent recv/send surfaces the error), false
/// on timeout. timeout_ms <= 0 waits forever. Retries EINTR.
bool wait_readable(int fd, std::int64_t timeout_ms);
bool wait_writable(int fd, std::int64_t timeout_ms);

/// Set or clear O_NONBLOCK. Throws IoError on fcntl failure.
void set_nonblocking(int fd, bool on);

/// Non-blocking connect to an IPv4 dotted host with a poll-based timeout
/// (<= 0 waits forever). Returns a connected, non-blocking, TCP_NODELAY
/// socket. Throws IoError on refusal, bad address, or timeout — a
/// black-holed endpoint costs timeout_ms, never an indefinite hang.
int connect_with_timeout(const std::string& host, int port,
                         std::int64_t timeout_ms);

/// One poll+recv round: wait up to timeout_ms for readability, then recv
/// once. Returns the byte count (> 0), 0 on EOF, or -1 on timeout.
/// Throws IoError on a socket error. The serve.net.read_stall and
/// serve.net.conn_close failpoints are evaluated only when data is
/// actually ready, so drill fire rates track traffic, not idle polls.
ssize_t timed_recv(int fd, char* buf, std::size_t len,
                   std::int64_t timeout_ms);

enum class SendOutcome {
  kOk,        ///< every byte written
  kTimeout,   ///< the peer stopped draining and the deadline expired
  kPeerGone,  ///< EPIPE/ECONNRESET, or the write_drop drill fired
};

/// Write all of `data` within timeout_ms (<= 0 = no deadline). The
/// serve.net.write_drop failpoint is evaluated once per call, before the
/// first byte goes out.
SendOutcome timed_send_all(int fd, std::string_view data,
                           std::int64_t timeout_ms);

}  // namespace codesign::serve::net
