#include "serve/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/strings.hpp"

namespace codesign::serve::net {

namespace {

using Clock = std::chrono::steady_clock;

bool wait_for(int fd, short events, std::int64_t timeout_ms) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms <= 0
                                       ? -1
                                       : static_cast<int>(std::min<std::int64_t>(
                                             timeout_ms, INT32_MAX)));
    if (rc > 0) return true;  // ready, or POLLERR/POLLHUP — caller's I/O tells
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw IoError(std::string("poll(): ") + std::strerror(errno));
  }
}

/// Evaluate the read-path drills on a ready fd. read_stall delays; the
/// conn_close drill half-closes both directions so the very next recv
/// reports EOF — a clean, retriable connection death.
void read_drills(int fd) {
  if (!fail::any_armed()) return;
  try {
    CODESIGN_FAILPOINT("serve.net.read_stall");
  } catch (const fail::InjectedFault&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kReadStallMs));
  }
  try {
    CODESIGN_FAILPOINT("serve.net.conn_close");
  } catch (const fail::InjectedFault&) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

}  // namespace

bool wait_readable(int fd, std::int64_t timeout_ms) {
  return wait_for(fd, POLLIN, timeout_ms);
}

bool wait_writable(int fd, std::int64_t timeout_ms) {
  return wait_for(fd, POLLOUT, timeout_ms);
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    throw IoError(std::string("fcntl(F_GETFL): ") + std::strerror(errno));
  }
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) != 0) {
    throw IoError(std::string("fcntl(F_SETFL): ") + std::strerror(errno));
  }
}

int connect_with_timeout(const std::string& host, int port,
                         std::int64_t timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw IoError(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw IoError("bad host address '" + host + "'");
  }
  try {
    set_nonblocking(fd, true);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (errno != EINPROGRESS) {
        throw IoError(str_format("cannot connect to %s:%d: %s", host.c_str(),
                                 port, std::strerror(errno)));
      }
      if (!wait_writable(fd, timeout_ms)) {
        throw IoError(str_format("connect to %s:%d timed out after %lld ms",
                                 host.c_str(), port,
                                 static_cast<long long>(timeout_ms)));
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        throw IoError(std::string("getsockopt(SO_ERROR): ") +
                      std::strerror(errno));
      }
      if (err != 0) {
        throw IoError(str_format("cannot connect to %s:%d: %s", host.c_str(),
                                 port, std::strerror(err)));
      }
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

ssize_t timed_recv(int fd, char* buf, std::size_t len,
                   std::int64_t timeout_ms) {
  for (;;) {
    if (!wait_readable(fd, timeout_ms)) return -1;
    read_drills(fd);
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // spurious wake
    throw IoError(std::string("recv(): ") + std::strerror(errno));
  }
}

SendOutcome timed_send_all(int fd, std::string_view data,
                           std::int64_t timeout_ms) {
  if (fail::any_armed()) {
    try {
      CODESIGN_FAILPOINT("serve.net.write_drop");
    } catch (const fail::InjectedFault&) {
      ::shutdown(fd, SHUT_RDWR);
      return SendOutcome::kPeerGone;
    }
  }
  const bool bounded = timeout_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? timeout_ms : 0);
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n >= 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (bounded) {
        const std::int64_t remaining_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now())
                .count();
        if (remaining_ms <= 0 || !wait_writable(fd, remaining_ms)) {
          return SendOutcome::kTimeout;
        }
      } else {
        wait_writable(fd, -1);
      }
      continue;
    }
    return SendOutcome::kPeerGone;  // EPIPE, ECONNRESET, ...
  }
  return SendOutcome::kOk;
}

}  // namespace codesign::serve::net
