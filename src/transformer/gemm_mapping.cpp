#include "transformer/gemm_mapping.hpp"

#include "common/error.hpp"

namespace codesign::tfm {

using gemm::FlashAttentionProblem;
using gemm::GemmProblem;

const char* op_name(LayerOp op) {
  switch (op) {
    case LayerOp::kQkvTransform: return "qkv_transform";
    case LayerOp::kAttentionScore: return "attention_score";
    case LayerOp::kAttentionOverValue: return "attention_over_value";
    case LayerOp::kPostAttnProjection: return "post_attn_projection";
    case LayerOp::kMlpUp: return "mlp_h_to_ff";
    case LayerOp::kMlpGate: return "mlp_gate";
    case LayerOp::kMlpDown: return "mlp_ff_to_h";
    case LayerOp::kLogitProjection: return "logit_projection";
    case LayerOp::kFlashAttention: return "flash_attention";
    case LayerOp::kLayerNorm1: return "layer_norm_1";
    case LayerOp::kLayerNorm2: return "layer_norm_2";
    case LayerOp::kRotaryEmbedding: return "rotary_embedding";
    case LayerOp::kSoftmax: return "softmax";
    case LayerOp::kActivation: return "activation";
    case LayerOp::kResidualAdd1: return "residual_add_1";
    case LayerOp::kResidualAdd2: return "residual_add_2";
    case LayerOp::kEmbeddingLookup: return "embedding_lookup";
    case LayerOp::kFinalLayerNorm: return "final_layer_norm";
  }
  return "?";
}

bool op_is_gemm(LayerOp op) {
  switch (op) {
    case LayerOp::kQkvTransform:
    case LayerOp::kAttentionScore:
    case LayerOp::kAttentionOverValue:
    case LayerOp::kPostAttnProjection:
    case LayerOp::kMlpUp:
    case LayerOp::kMlpGate:
    case LayerOp::kMlpDown:
    case LayerOp::kLogitProjection:
      return true;
    default:
      return false;
  }
}

GemmProblem qkv_gemm(const TransformerConfig& c) {
  c.validate();
  // (b·s, h) × (h, (h + 2·kv·d)/t) — the classic (h, 3h/t) for MHA; GQA
  // shrinks the K and V slices.
  return GemmProblem::gemm(c.tokens(), c.qkv_width() / c.tensor_parallel,
                           c.hidden_size, c.dtype);
}

GemmProblem attention_score_bmm(const TransformerConfig& c) {
  c.validate();
  // b·a/t batched (s, h/a) × (h/a, s)
  return GemmProblem::bmm(c.microbatch * c.heads_per_tp(), c.seq_len,
                          c.seq_len, c.head_dim(), c.dtype);
}

GemmProblem attention_over_value_bmm(const TransformerConfig& c) {
  c.validate();
  // b·a/t batched (s, s) × (s, h/a)
  return GemmProblem::bmm(c.microbatch * c.heads_per_tp(), c.seq_len,
                          c.head_dim(), c.seq_len, c.dtype);
}

GemmProblem post_attn_projection_gemm(const TransformerConfig& c) {
  c.validate();
  // (b·s, h/t) × (h/t, h)
  return GemmProblem::gemm(c.tokens(), c.hidden_size, c.hidden_per_tp(),
                           c.dtype);
}

GemmProblem mlp_up_gemm(const TransformerConfig& c) {
  c.validate();
  // (b·s, h) × (h, d_ff/t)
  return GemmProblem::gemm(c.tokens(), c.d_ff() / c.tensor_parallel,
                           c.hidden_size, c.dtype);
}

GemmProblem mlp_down_gemm(const TransformerConfig& c) {
  c.validate();
  // (b·s, d_ff/t) × (d_ff/t, h)
  return GemmProblem::gemm(c.tokens(), c.hidden_size,
                           c.d_ff() / c.tensor_parallel, c.dtype);
}

GemmProblem logit_gemm(const TransformerConfig& c) {
  c.validate();
  // (b·s, h) × (h, v/t) — vocab-parallel under tensor parallelism.
  return GemmProblem::gemm(c.tokens(), c.vocab_size / c.tensor_parallel,
                           c.hidden_size, c.dtype);
}

FlashAttentionProblem flash_attention_problem(const TransformerConfig& c) {
  c.validate();
  FlashAttentionProblem p;
  p.batch = c.microbatch;
  p.heads = c.heads_per_tp();
  p.seq = c.seq_len;
  p.head_dim = c.head_dim();
  p.causal = c.kind == ModelKind::kDecoder;  // encoders are bidirectional
  p.dtype = c.dtype;
  return p;
}

std::vector<GemmProblem> layer_gemms(const TransformerConfig& c) {
  c.validate();
  std::vector<GemmProblem> out;
  out.push_back(qkv_gemm(c));
  if (c.attention == AttentionImpl::kBmm) {
    out.push_back(attention_score_bmm(c));
    out.push_back(attention_over_value_bmm(c));
  }
  out.push_back(post_attn_projection_gemm(c));
  out.push_back(mlp_up_gemm(c));
  if (c.activation == Activation::kSwiGlu) {
    out.push_back(mlp_up_gemm(c));  // the gate twin has the same shape
  }
  out.push_back(mlp_down_gemm(c));
  return out;
}

namespace {

double esize(const TransformerConfig& c) {
  return static_cast<double>(gpu::dtype_size(c.dtype));
}

/// Activation tensor of shape (b·s, width): bytes of one read or write.
double act_bytes(const TransformerConfig& c, double width) {
  return static_cast<double>(c.tokens()) * width * esize(c);
}

MappedOp gemm_op(LayerOp op, GemmProblem p) {
  MappedOp m;
  m.op = op;
  m.flops = p.flops();
  m.gemm = std::move(p);
  return m;
}

MappedOp elementwise_op(LayerOp op, double bytes, double flops = 0.0) {
  MappedOp m;
  m.op = op;
  m.elementwise_bytes = bytes;
  m.flops = flops;
  return m;
}

}  // namespace

std::vector<MappedOp> layer_ops(const TransformerConfig& c) {
  std::vector<MappedOp> ops;
  layer_ops_into(c, ops);
  return ops;
}

void layer_ops_into(const TransformerConfig& c, std::vector<MappedOp>& ops) {
  c.validate();
  const double h = static_cast<double>(c.hidden_size);
  const double h_tp = static_cast<double>(c.hidden_per_tp());
  const double ff_tp = static_cast<double>(c.d_ff() / c.tensor_parallel);
  const double s = static_cast<double>(c.seq_len);
  const double bs = static_cast<double>(c.tokens());
  const double heads_tp = static_cast<double>(c.heads_per_tp());
  const double e = esize(c);

  ops.clear();

  // LayerNorm 1: read x, write y (running stats stay on chip).
  ops.push_back(elementwise_op(LayerOp::kLayerNorm1,
                               2.0 * act_bytes(c, h), 5.0 * bs * h));

  ops.push_back(gemm_op(LayerOp::kQkvTransform, qkv_gemm(c)));

  if (c.pos_embedding == PosEmbedding::kRotary) {
    // Rotate Q and K in place: read + write of 2 of the 3 QKV streams.
    ops.push_back(elementwise_op(LayerOp::kRotaryEmbedding,
                                 4.0 * act_bytes(c, h_tp), 6.0 * bs * h_tp));
  }

  if (c.attention == AttentionImpl::kFlash) {
    MappedOp m;
    m.op = LayerOp::kFlashAttention;
    m.flash = flash_attention_problem(c);
    m.flops = m.flash->flops();
    ops.push_back(std::move(m));
  } else {
    ops.push_back(gemm_op(LayerOp::kAttentionScore, attention_score_bmm(c)));
    // Softmax materializes the (b·a/t, s, s) score tensor: read + write.
    const double score_bytes =
        2.0 * static_cast<double>(c.microbatch) * heads_tp * s * s * e;
    ops.push_back(elementwise_op(LayerOp::kSoftmax, score_bytes,
                                 5.0 * c.microbatch * heads_tp * s * s));
    ops.push_back(
        gemm_op(LayerOp::kAttentionOverValue, attention_over_value_bmm(c)));
  }

  ops.push_back(
      gemm_op(LayerOp::kPostAttnProjection, post_attn_projection_gemm(c)));

  // Residual add: read both operands, write the sum.
  ops.push_back(elementwise_op(LayerOp::kResidualAdd1,
                               3.0 * act_bytes(c, h), bs * h));

  ops.push_back(elementwise_op(LayerOp::kLayerNorm2,
                               2.0 * act_bytes(c, h), 5.0 * bs * h));

  ops.push_back(gemm_op(LayerOp::kMlpUp, mlp_up_gemm(c)));
  if (c.activation == Activation::kSwiGlu) {
    ops.push_back(gemm_op(LayerOp::kMlpGate, mlp_up_gemm(c)));
    // swiglu combine: read gate + up, write one stream.
    ops.push_back(elementwise_op(LayerOp::kActivation,
                                 3.0 * act_bytes(c, ff_tp),
                                 4.0 * bs * ff_tp));
  } else {
    // GELU: read + write the d_ff-wide stream.
    ops.push_back(elementwise_op(LayerOp::kActivation,
                                 2.0 * act_bytes(c, ff_tp),
                                 8.0 * bs * ff_tp));
  }
  ops.push_back(gemm_op(LayerOp::kMlpDown, mlp_down_gemm(c)));

  ops.push_back(elementwise_op(LayerOp::kResidualAdd2,
                               3.0 * act_bytes(c, h), bs * h));
}

std::vector<MappedOp> model_level_ops(const TransformerConfig& c) {
  c.validate();
  const double h = static_cast<double>(c.hidden_size);
  std::vector<MappedOp> ops;
  // Embedding lookup: gather b·s rows of h (read) + write; positional add
  // folded in for learned embeddings.
  const double embed_factor =
      c.pos_embedding == PosEmbedding::kLearned ? 3.0 : 2.0;
  ops.push_back(elementwise_op(LayerOp::kEmbeddingLookup,
                               embed_factor * act_bytes(c, h)));
  ops.push_back(elementwise_op(LayerOp::kFinalLayerNorm,
                               2.0 * act_bytes(c, h),
                               5.0 * static_cast<double>(c.tokens()) * h));
  ops.push_back(gemm_op(LayerOp::kLogitProjection, logit_gemm(c)));
  return ops;
}

}  // namespace codesign::tfm
