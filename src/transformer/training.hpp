// training.hpp — training-step latency and memory models.
//
// The paper's throughput numbers are training throughput, and its rule
// "the microbatch size b should be as large as possible" is bounded by
// GPU memory. This module supplies both halves:
//
//  * Backward-pass GEMM mapping. For every forward GEMM
//    Y(m×n) = X(m×k) · W(k×n) the backward pass runs two GEMMs:
//      dgrad:  dX(m×k) = dY(m×n) · Wᵀ(n×k)   → GEMM(m, k, n)
//      wgrad:  dW(k×n) = Xᵀ(k×m) · dY(m×n)   → GEMM(k, n, m)
//    Note the shape rotations: wgrad puts b·s on the *inner* dimension
//    and the two weight dimensions on the outside, so a shape that is
//    efficient forward is efficient backward only if ALL of its
//    dimensions are aligned — the same §VI-B rules, applied twice more.
//    (Activation-only BMMs — attention score/AOV — have two dgrads and
//    no wgrad.)
//
//  * Mixed-precision memory accounting (Megatron/ZeRO-0 style):
//    fp16 weights (2P) + fp16 grads (2P) + fp32 master weights (4P) +
//    fp32 Adam moments (8P) = 16P bytes of static state per GPU (P here
//    is parameters per tensor-parallel rank), plus activation memory per
//    microbatch ≈ s·b·h·(34 + 5·a·s/h)/t bytes per layer for the
//    standard layer (Korthikanti et al.'s checkpointing-free accounting),
//    reduced when FlashAttention avoids materializing the s×s scores.
#pragma once

#include <vector>

#include "gemmsim/simulator.hpp"
#include "transformer/config.hpp"

namespace codesign::tfm {

/// The backward GEMMs derived from one forward GEMM. Weight GEMMs produce
/// both; activation-activation BMMs produce two dgrads.
struct BackwardPair {
  gemm::GemmProblem dgrad;
  gemm::GemmProblem wgrad;
  bool has_wgrad = true;
};

/// Backward pair for a forward weight GEMM Y = X·W with X (m×k), W (k×n).
BackwardPair backward_of(const gemm::GemmProblem& forward);

/// All backward GEMMs of one transformer layer, in reverse execution
/// order. For BMM attention this contains the four activation dgrads
/// (dQ, dK via the score BMM; dP, dV via the AOV BMM).
std::vector<gemm::GemmProblem> layer_backward_gemms(
    const TransformerConfig& config);

/// Backward time of one layer (dgrad + wgrad GEMMs, flash backward when
/// configured, and the mirrored non-GEMM traffic). Shared by the training
/// step and pipeline models.
double layer_backward_time(const TransformerConfig& config,
                           const gemm::GemmSimulator& sim);

/// Latency report for one full training step (forward + backward +
/// optimizer) of the whole model on one tensor-parallel rank.
struct TrainingStepReport {
  TransformerConfig config;
  double forward_time = 0.0;       ///< L·layer + model-level ops
  double backward_time = 0.0;      ///< dgrad + wgrad GEMMs + elementwise
  double optimizer_time = 0.0;     ///< Adam update: streams the 16P state
  double total_time = 0.0;
  double step_flops = 0.0;         ///< 3 × forward model FLOPs
  double model_tflops = 0.0;       ///< step_flops / total_time (the "model
                                   ///  FLOP/s" metric of Megatron papers)
  double mfu = 0.0;                ///< model_tflops / peak tensor TFLOPs
};

TrainingStepReport analyze_training_step(const TransformerConfig& config,
                                         const gemm::GemmSimulator& sim);

/// Memory-saving techniques orthogonal to model shape. These are the
/// levers practitioners pull when max_microbatch() says 0 — included so
/// the "b as large as possible" analysis covers the full design space.
struct MemoryOptions {
  /// Full activation checkpointing: store only each layer's input
  /// (2·s·b·h/t bytes) and recompute the rest in the backward pass. The
  /// recompute cost (~one extra forward) is accounted by
  /// analyze_training_step when enabled.
  bool activation_checkpointing = false;
  /// ZeRO optimizer-state sharding across `data_parallel` ranks:
  /// stage 1 shards the fp32 optimizer state, stage 2 also the fp16
  /// gradients, stage 3 also the fp16 weights.
  int zero_stage = 0;
  std::int64_t data_parallel = 1;
  /// Megatron sequence parallelism (Korthikanti et al.) — the analysis
  /// the paper leaves to future work. Splits the LayerNorm/dropout
  /// activations (the 10·s·b·h bytes/layer that plain tensor parallelism
  /// replicates) across the t ranks. The collectives change from 2
  /// all-reduces to (all-gather + reduce-scatter) pairs of identical ring
  /// cost, so only memory moves, not time.
  bool sequence_parallel = false;
};

/// Static + activation memory for training on one tensor-parallel rank.
struct MemoryFootprint {
  double weight_bytes = 0.0;      ///< fp16 parameters (2P/t)
  double gradient_bytes = 0.0;    ///< fp16 gradients (2P/t)
  double optimizer_bytes = 0.0;   ///< fp32 master + Adam moments (12P/t)
  double activation_bytes = 0.0;  ///< per-microbatch activations, all layers
  double total_bytes = 0.0;

  /// True if total_bytes fits in the GPU's HBM with `reserve_fraction`
  /// (default 10%) held back for workspace/fragmentation.
  bool fits(const gpu::GpuSpec& gpu, double reserve_fraction = 0.10) const;
};

MemoryFootprint training_memory(const TransformerConfig& config,
                                const MemoryOptions& options = {});

/// Activation bytes per layer per microbatch (Korthikanti et al.):
/// s·b·h·(10 + 24/t + 5as/(ht)) for the standard layer — the 10 covers
/// the LayerNorm inputs, dropouts, and residual streams that tensor
/// parallelism replicates; sequence parallelism divides them by t too
/// (options overload). FlashAttention removes the 5as/h score/softmax
/// term; SwiGLU adds its gate stream to the TP-split part.
double activation_bytes_per_layer(const TransformerConfig& config,
                                  const MemoryOptions& options);
double activation_bytes_per_layer(const TransformerConfig& config);

/// The largest microbatch b whose training footprint fits the GPU — the
/// quantitative form of the paper's "b as large as possible" rule.
/// Returns 0 when even b = 1 does not fit (the model needs more
/// parallelism).
std::int64_t max_microbatch(const TransformerConfig& config,
                            const gpu::GpuSpec& gpu,
                            std::int64_t limit = 512,
                            const MemoryOptions& options = {});

}  // namespace codesign::tfm
