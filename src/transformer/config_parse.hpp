// config_parse.hpp — parse a TransformerConfig from a compact spec string.
//
// Grammar: comma-separated key=value pairs, e.g.
//   "h=2560,a=32,L=32,s=2048,b=4,v=50304,t=1"
//   "h=4096,a=32,kv=8,L=32,dff=11008,act=swiglu,pos=rotary,attn=flash"
//
// Keys:
//   h, a, L (layers), s (seq), b (microbatch), v (vocab),
//   t (tensor parallel), kv (KV heads), dff (MLP intermediate),
//   act = gelu | swiglu
//   pos = learned | rotary | alibi
//   attn = bmm | flash
//   kind = decoder | encoder
//   parallel = 0 | 1   (parallel attention+MLP layers)
//   tied = 0 | 1       (weight-tied LM head)
//   name = <identifier>
//
// Unknown keys and malformed values throw ConfigError; the result is
// validate()d before being returned. This powers `codesign ... --custom=`.
#pragma once

#include <string>

#include "transformer/config.hpp"

namespace codesign::tfm {

TransformerConfig parse_config_string(const std::string& spec);

}  // namespace codesign::tfm
