// config_parse.hpp — parse a TransformerConfig from a compact spec string.
//
// Grammar: comma-separated key=value pairs, e.g.
//   "h=2560,a=32,L=32,s=2048,b=4,v=50304,t=1"
//   "h=4096,a=32,kv=8,L=32,dff=11008,act=swiglu,pos=rotary,attn=flash"
//
// Keys:
//   h, a, L (layers), s (seq), b (microbatch), v (vocab),
//   t (tensor parallel), kv (KV heads), dff (MLP intermediate),
//   act = gelu | swiglu
//   pos = learned | rotary | alibi
//   attn = bmm | flash
//   kind = decoder | encoder
//   parallel = 0 | 1   (parallel attention+MLP layers)
//   tied = 0 | 1       (weight-tied LM head)
//   name = <identifier>
//
// Unknown keys and malformed values throw ConfigError; the result is
// validate()d before being returned. This powers `codesign ... --custom=`.
//
// The same header also exposes the sectioned config-*file* grammar used by
// `codesign sweep` (docs/SWEEP.md): INI-style `[section]` headers, one
// `key = value` entry per line, `#`/`;` comments, blank lines ignored.
// Sections may repeat (each `[workload]` block is one workload); duplicate
// keys *within* a section are rejected. Every diagnostic names the offending
// file:line — `sweep.conf:12: duplicate key 'heads' in section [workload]` —
// so a bad matrix config is a one-hop fix.
#pragma once

#include <string>
#include <vector>

#include "transformer/config.hpp"

namespace codesign::tfm {

TransformerConfig parse_config_string(const std::string& spec);

/// One `key = value` line of a sectioned config file. `line` is 1-based in
/// the original text, preserved so later passes (e.g. the sweep workload
/// lowering) can still report file:line for semantic errors.
struct ConfigEntry {
  std::string key;    ///< lowercased
  std::string value;  ///< trimmed, original case
  int line = 0;
};

/// One `[name]` block and its entries, in file order.
struct ConfigSection {
  std::string name;  ///< lowercased header name
  int line = 0;      ///< 1-based line of the `[name]` header
  std::vector<ConfigEntry> entries;

  /// First entry with this key, or nullptr. Keys are unique per section
  /// (the parser rejects duplicates), so "first" is "the" entry.
  const ConfigEntry* find(const std::string& key) const;
};

/// Parse a sectioned config file. `origin` is the path (or any label for
/// in-memory text) used in diagnostics. Throws ConfigError on entries
/// before the first section header, duplicate keys within a section, or
/// lines that are neither `[section]` nor `key = value`, always naming
/// origin:line.
std::vector<ConfigSection> parse_config_sections(const std::string& text,
                                                 const std::string& origin);

}  // namespace codesign::tfm
