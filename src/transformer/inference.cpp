#include "transformer/inference.hpp"

#include "common/error.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/params.hpp"

namespace codesign::tfm {

double decode_launches_per_step(const TransformerConfig& c) {
  // Per layer: QKV, score, AOV, projection, MLP matrices — one launch each —
  // plus the non-GEMM kernels (LayerNorms, softmax, rotary, activation,
  // residuals). FlashAttention fuses score+softmax+AOV into one.
  double gemms = 4.0 + static_cast<double>(c.mlp_matrices());
  double aux = 5.0;  // ln1, ln2, activation, residual x2
  if (c.attention == AttentionImpl::kFlash) {
    gemms -= 2.0;  // score+AOV folded into the fused kernel
  } else {
    aux += 1.0;  // explicit softmax
  }
  if (c.pos_embedding == PosEmbedding::kRotary) aux += 1.0;
  if (c.parallel_layers) aux -= 2.0;  // fused norm + single residual
  const double per_layer = gemms + aux;
  // Model-level: embedding gather, final LN, logit projection, sampling.
  return per_layer * static_cast<double>(c.num_layers) + 4.0;
}

InferenceEstimate estimate_inference(const TransformerConfig& config,
                                     const gemm::GemmSimulator& sim,
                                     const InferenceWorkload& workload) {
  config.validate();
  CODESIGN_CHECK(config.kind == ModelKind::kDecoder,
                 "autoregressive inference needs a decoder-only model; "
                 "encoders run a single forward pass (use analyze_model)");
  CODESIGN_CHECK(workload.prompt_len > 0 && workload.generate_tokens > 0 &&
                     workload.batch > 0,
                 "inference workload values must be positive");
  CODESIGN_CHECK(workload.prompt_len + workload.generate_tokens <=
                     config.seq_len,
                 "prompt + generation exceeds the model's context length");

  const gpu::GpuSpec& g = sim.gpu();
  InferenceEstimate e;
  e.config = config;
  e.workload = workload;

  // --- prefill: one forward pass over the prompt --------------------------
  TransformerConfig prefill_cfg = config.with_microbatch(workload.batch)
                                      .with_seq_len(workload.prompt_len);
  const ModelLatencyReport prefill = analyze_model(prefill_cfg, sim);
  e.prefill_time = prefill.total_time;

  // --- decode: one token per step ------------------------------------------
  const double esize = static_cast<double>(gpu::dtype_size(config.dtype));
  e.weight_bytes = static_cast<double>(exact_param_count(config)) * esize /
                   static_cast<double>(config.tensor_parallel);

  // KV cache traffic per step: 2 (K and V) per layer over the current
  // context; use the mid-generation average context length. GQA shrinks
  // this by kv_heads/a (its reason to exist).
  const double ctx_avg = static_cast<double>(workload.prompt_len) +
                         static_cast<double>(workload.generate_tokens) / 2.0;
  const double kv_width =
      static_cast<double>(config.kv_heads() * config.head_dim()) /
      static_cast<double>(config.tensor_parallel);
  e.kv_bytes_avg = 2.0 * static_cast<double>(config.num_layers) * ctx_avg *
                   kv_width * esize * static_cast<double>(workload.batch);

  e.launches_per_step = decode_launches_per_step(config);

  // Memory-bound streaming: weights + KV through HBM. The decode-step GEMVs
  // have m = batch (tiny), so there is no compute-bound regime; the
  // vector-math time is negligible against the streaming time.
  const double stream_time =
      (e.weight_bytes + e.kv_bytes_avg) / g.achievable_bandwidth();
  const double launch_time = e.launches_per_step * g.kernel_launch_overhead;
  e.per_token_time = stream_time + launch_time;

  e.decode_time =
      e.per_token_time * static_cast<double>(workload.generate_tokens);
  e.total_time = e.prefill_time + e.decode_time;
  e.tokens_per_second = 1.0 / e.per_token_time;
  return e;
}

EncoderServingEstimate estimate_encoder_serving(
    const TransformerConfig& config, const gemm::GemmSimulator& sim,
    std::int64_t batch) {
  config.validate();
  CODESIGN_CHECK(config.kind == ModelKind::kEncoder,
                 "estimate_encoder_serving expects an encoder-only model");
  CODESIGN_CHECK(batch > 0, "batch must be positive");
  EncoderServingEstimate e;
  e.config = config;
  e.batch = batch;
  const ModelLatencyReport fwd =
      analyze_model(config.with_microbatch(batch), sim);
  e.batch_latency = fwd.total_time;
  e.sequences_per_second = static_cast<double>(batch) / fwd.total_time;
  e.tokens_per_second =
      e.sequences_per_second * static_cast<double>(config.seq_len);
  return e;
}

}  // namespace codesign::tfm
