#include "transformer/training.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "transformer/flops.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/params.hpp"

namespace codesign::tfm {

using gemm::GemmProblem;

BackwardPair backward_of(const GemmProblem& forward) {
  forward.validate();
  BackwardPair out;
  // dX = dY · Wᵀ : (m × n) · (n × k) → m × k.
  out.dgrad = GemmProblem::bmm(forward.batch, forward.m, forward.k, forward.n,
                               forward.dtype);
  // dW = Xᵀ · dY : (k × m) · (m × n) → k × n.
  out.wgrad = GemmProblem::bmm(forward.batch, forward.k, forward.n, forward.m,
                               forward.dtype);
  // Weight gradients accumulate across microbatches (beta = 1).
  out.wgrad.accumulate_into_c = true;
  return out;
}

std::vector<GemmProblem> layer_backward_gemms(const TransformerConfig& c) {
  c.validate();
  std::vector<GemmProblem> out;
  auto push_weight = [&out](const GemmProblem& fwd) {
    const BackwardPair p = backward_of(fwd);
    out.push_back(p.dgrad);
    out.push_back(p.wgrad);
  };
  auto push_activation_bmm = [&out](const GemmProblem& fwd) {
    // C = A·B with both operands activations: dA = dC·Bᵀ and dB = Aᵀ·dC,
    // both plain (non-accumulating) batched GEMMs.
    const BackwardPair p = backward_of(fwd);
    GemmProblem db = p.wgrad;
    db.accumulate_into_c = false;
    out.push_back(p.dgrad);
    out.push_back(db);
  };

  // Reverse execution order of layer_gemms().
  push_weight(mlp_down_gemm(c));
  if (c.activation == Activation::kSwiGlu) push_weight(mlp_up_gemm(c));
  push_weight(mlp_up_gemm(c));
  push_weight(post_attn_projection_gemm(c));
  if (c.attention == AttentionImpl::kBmm) {
    push_activation_bmm(attention_over_value_bmm(c));
    push_activation_bmm(attention_score_bmm(c));
  }
  push_weight(qkv_gemm(c));
  return out;
}

double layer_backward_time(const TransformerConfig& config,
                           const gemm::GemmSimulator& sim) {
  config.validate();
  double layer_bwd = 0.0;
  for (const GemmProblem& p : layer_backward_gemms(config)) {
    layer_bwd += sim.latency(p);
  }
  if (config.attention == AttentionImpl::kFlash) {
    // FlashAttention's backward recomputes the forward matmuls and adds
    // the gradient matmuls: ~2.5x the forward fused-kernel math.
    gemm::FlashAttentionProblem fp = flash_attention_problem(config);
    const auto est = sim.estimate_flash(fp);
    layer_bwd += 2.5 * est.time;
  }
  // Non-GEMM backward kernels mirror the forward elementwise traffic
  // (softmax-backward, LN-backward, activation-backward, residual): model
  // them as the forward non-GEMM traffic replayed once.
  layer_bwd += analyze_layer(config, sim).non_gemm_time;
  return layer_bwd;
}

TrainingStepReport analyze_training_step(const TransformerConfig& config,
                                         const gemm::GemmSimulator& sim) {
  config.validate();
  TrainingStepReport r;
  r.config = config;

  const ModelLatencyReport fwd = analyze_model(config, sim);
  r.forward_time = fwd.total_time;

  // Backward of the logit projection (the single heaviest weight GEMM).
  double logit_bwd = 0.0;
  {
    const BackwardPair p = backward_of(logit_gemm(config));
    logit_bwd = sim.latency(p.dgrad) + sim.latency(p.wgrad);
  }

  r.backward_time = static_cast<double>(config.num_layers) *
                        layer_backward_time(config, sim) +
                    logit_bwd;

  // Optimizer: Adam reads/writes the full mixed-precision state once.
  const MemoryFootprint mem = training_memory(config);
  const double state_bytes =
      mem.weight_bytes + mem.gradient_bytes + mem.optimizer_bytes;
  r.optimizer_time = 2.0 * state_bytes / sim.gpu().achievable_bandwidth();

  r.total_time = r.forward_time + r.backward_time + r.optimizer_time;
  r.step_flops = model_training_flops(config) /
                 static_cast<double>(config.tensor_parallel);
  r.model_tflops = r.step_flops / r.total_time / 1e12;
  const double peak =
      sim.gpu().tensor_flops(config.dtype) > 0
          ? sim.gpu().tensor_flops(config.dtype)
          : sim.gpu().vector_flops(config.dtype);
  r.mfu = r.step_flops / r.total_time / peak;
  return r;
}

double activation_bytes_per_layer(const TransformerConfig& c,
                                  const MemoryOptions& options) {
  c.validate();
  const double s = static_cast<double>(c.seq_len);
  const double b = static_cast<double>(c.microbatch);
  const double h = static_cast<double>(c.hidden_size);
  const double a = static_cast<double>(c.num_heads);
  const double t = static_cast<double>(c.tensor_parallel);
  // Korthikanti et al.: sbh(34 + 5as/h) bytes per layer at t = 1 (fp16
  // activations, standard GELU layer). Under tensor parallelism the
  // attention/MLP internals (24 bytes/token + the score terms) divide by
  // t, while the LayerNorm inputs, dropout masks, and residual streams
  // (10 bytes/token) are replicated — unless sequence parallelism splits
  // them too.
  double split_per_token = 24.0;
  const double replicated_per_token = 10.0;
  if (c.attention == AttentionImpl::kBmm) {
    // The s×s score + softmax + attention-dropout storage FlashAttention
    // eliminates; head-split across t.
    split_per_token += 5.0 * a * s / h;
  }
  if (c.activation == Activation::kSwiGlu) {
    // Gate stream adds one d_ff-wide fp16 activation (vs the GELU layer's
    // 8h within the 24): + 2·d_ff/h per token, TP-split.
    split_per_token += 2.0 * static_cast<double>(c.d_ff()) / h;
  }
  const double replicated_divisor = options.sequence_parallel ? t : 1.0;
  return s * b * h *
         (split_per_token / t + replicated_per_token / replicated_divisor);
}

double activation_bytes_per_layer(const TransformerConfig& c) {
  return activation_bytes_per_layer(c, MemoryOptions{});
}

MemoryFootprint training_memory(const TransformerConfig& c,
                                const MemoryOptions& options) {
  c.validate();
  CODESIGN_CHECK(options.zero_stage >= 0 && options.zero_stage <= 3,
                 "zero_stage must be in [0, 3]");
  CODESIGN_CHECK(options.data_parallel >= 1, "data_parallel must be >= 1");
  MemoryFootprint m;
  const double p_per_rank =
      static_cast<double>(exact_param_count(c)) /
      static_cast<double>(c.tensor_parallel);
  const double dp = static_cast<double>(options.data_parallel);
  m.weight_bytes = 2.0 * p_per_rank / (options.zero_stage >= 3 ? dp : 1.0);
  m.gradient_bytes = 2.0 * p_per_rank / (options.zero_stage >= 2 ? dp : 1.0);
  m.optimizer_bytes =  // fp32 master (4) + Adam m,v (8)
      12.0 * p_per_rank / (options.zero_stage >= 1 ? dp : 1.0);
  if (options.activation_checkpointing) {
    // Only the layer inputs survive (2 bytes/elem of the s·b·h stream),
    // plus one layer's full working set alive during recomputation.
    const double boundary = 2.0 * static_cast<double>(c.tokens()) *
                            static_cast<double>(c.hidden_per_tp());
    m.activation_bytes = boundary * static_cast<double>(c.num_layers) +
                         activation_bytes_per_layer(c, options);
  } else {
    m.activation_bytes = activation_bytes_per_layer(c, options) *
                         static_cast<double>(c.num_layers);
  }
  m.total_bytes = m.weight_bytes + m.gradient_bytes + m.optimizer_bytes +
                  m.activation_bytes;
  return m;
}

bool MemoryFootprint::fits(const gpu::GpuSpec& gpu,
                           double reserve_fraction) const {
  CODESIGN_CHECK(reserve_fraction >= 0.0 && reserve_fraction < 1.0,
                 "reserve fraction out of range");
  return total_bytes <= gpu.hbm_capacity * (1.0 - reserve_fraction);
}

std::int64_t max_microbatch(const TransformerConfig& config,
                            const gpu::GpuSpec& gpu, std::int64_t limit,
                            const MemoryOptions& options) {
  CODESIGN_CHECK(limit >= 1, "limit must be >= 1");
  std::int64_t best = 0;
  for (std::int64_t b = 1; b <= limit; ++b) {
    const TransformerConfig cfg = config.with_microbatch(b);
    if (!training_memory(cfg, options).fits(gpu)) break;
    best = b;
  }
  return best;
}

}  // namespace codesign::tfm
