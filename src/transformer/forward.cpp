#include "transformer/forward.hpp"

#include <cmath>

#include "common/error.hpp"
#include "kernels/gemm_cpu.hpp"
#include "kernels/ops.hpp"

namespace codesign::tfm {

using kern::GemmOptions;

namespace {

constexpr float kInitStd = 0.02f;

LayerWeights random_layer(const TransformerConfig& c, Rng& rng) {
  const std::int64_t h = c.hidden_size;
  const std::int64_t ff = c.d_ff();
  LayerWeights w;
  w.ln1_gamma = Tensor::full({h}, 1.0f);
  w.ln1_beta = Tensor::zeros({h});
  w.w_qkv = Tensor::randn({3 * h, h}, rng, kInitStd);
  w.b_qkv = Tensor::zeros({3 * h});
  w.w_proj = Tensor::randn({h, h}, rng, kInitStd);
  w.b_proj = Tensor::zeros({h});
  w.ln2_gamma = Tensor::full({h}, 1.0f);
  w.ln2_beta = Tensor::zeros({h});
  w.w_up = Tensor::randn({ff, h}, rng, kInitStd);
  w.b_up = Tensor::zeros({ff});
  if (c.activation == Activation::kSwiGlu) {
    w.w_gate = Tensor::randn({ff, h}, rng, kInitStd);
  }
  w.w_down = Tensor::randn({h, ff}, rng, kInitStd);
  w.b_down = Tensor::zeros({h});
  return w;
}

/// Split the fused (len, 3h) QKV activation into per-head rank-3 tensors
/// q, k, v of shape (a, len, d) with d = h/a.
void split_heads(const Tensor& qkv, std::int64_t heads, std::int64_t d,
                 Tensor& q, Tensor& k, Tensor& v) {
  const std::int64_t len = qkv.dim(0);
  const std::int64_t h = heads * d;
  q = Tensor({heads, len, d});
  k = Tensor({heads, len, d});
  v = Tensor({heads, len, d});
  for (std::int64_t a = 0; a < heads; ++a) {
    for (std::int64_t i = 0; i < len; ++i) {
      for (std::int64_t j = 0; j < d; ++j) {
        q.at(a, i, j) = qkv.at(i, a * d + j);
        k.at(a, i, j) = qkv.at(i, h + a * d + j);
        v.at(a, i, j) = qkv.at(i, 2 * h + a * d + j);
      }
    }
  }
}

/// Merge (a, len, d) context back to (len, h).
Tensor merge_heads(const Tensor& ctx) {
  const std::int64_t heads = ctx.dim(0);
  const std::int64_t len = ctx.dim(1);
  const std::int64_t d = ctx.dim(2);
  Tensor out({len, heads * d});
  for (std::int64_t a = 0; a < heads; ++a) {
    for (std::int64_t i = 0; i < len; ++i) {
      for (std::int64_t j = 0; j < d; ++j) {
        out.at(i, a * d + j) = ctx.at(a, i, j);
      }
    }
  }
  return out;
}

/// Batched transpose of the key tensor: (a, len, d) -> (a, d, len).
Tensor transpose_keys(const Tensor& k) {
  Tensor out({k.dim(0), k.dim(2), k.dim(1)});
  for (std::int64_t a = 0; a < k.dim(0); ++a) {
    for (std::int64_t i = 0; i < k.dim(1); ++i) {
      for (std::int64_t j = 0; j < k.dim(2); ++j) {
        out.at(a, j, i) = k.at(a, i, j);
      }
    }
  }
  return out;
}

/// Rotary position embedding applied to a per-head (a, len, d) tensor,
/// rotating consecutive even/odd pairs by position-dependent angles.
Tensor apply_rotary(const Tensor& x) {
  Tensor out = x;
  const std::int64_t heads = x.dim(0);
  const std::int64_t len = x.dim(1);
  const std::int64_t d = x.dim(2);
  for (std::int64_t a = 0; a < heads; ++a) {
    for (std::int64_t pos = 0; pos < len; ++pos) {
      for (std::int64_t j = 0; j + 1 < d; j += 2) {
        const double theta =
            static_cast<double>(pos) *
            std::pow(10000.0, -static_cast<double>(j) / static_cast<double>(d));
        const float c = static_cast<float>(std::cos(theta));
        const float s = static_cast<float>(std::sin(theta));
        const float x0 = x.at(a, pos, j);
        const float x1 = x.at(a, pos, j + 1);
        out.at(a, pos, j) = x0 * c - x1 * s;
        out.at(a, pos, j + 1) = x0 * s + x1 * c;
      }
    }
  }
  return out;
}

}  // namespace

TransformerModel TransformerModel::random_init(const TransformerConfig& config,
                                               std::uint64_t seed) {
  config.validate();
  CODESIGN_CHECK(config.tensor_parallel == 1,
                 "the executable forward pass models a single GPU (t = 1)");
  CODESIGN_CHECK(config.kv_heads() == config.num_heads,
                 "the executable forward pass implements full multi-head "
                 "attention (set num_kv_heads = 0)");
  TransformerModel m;
  m.config_ = config;
  Rng rng(seed);
  m.weights_.token_embedding =
      Tensor::randn({config.vocab_size, config.hidden_size}, rng, kInitStd);
  if (config.pos_embedding == PosEmbedding::kLearned) {
    m.weights_.pos_embedding =
        Tensor::randn({config.seq_len, config.hidden_size}, rng, kInitStd);
  }
  m.weights_.layers.reserve(static_cast<std::size_t>(config.num_layers));
  for (std::int64_t l = 0; l < config.num_layers; ++l) {
    m.weights_.layers.push_back(random_layer(config, rng));
  }
  m.weights_.final_ln_gamma = Tensor::full({config.hidden_size}, 1.0f);
  m.weights_.final_ln_beta = Tensor::zeros({config.hidden_size});
  if (!config.tied_embeddings) {
    m.weights_.lm_head =
        Tensor::randn({config.vocab_size, config.hidden_size}, rng, kInitStd);
  }
  return m;
}

Tensor TransformerModel::attention_block(const Tensor& x,
                                         const LayerWeights& w) const {
  const std::int64_t heads = config_.num_heads;
  const std::int64_t d = config_.head_dim();

  // QKV transform: (len, h) x (h, 3h) — Table II row 1.
  const Tensor qkv = kern::linear(x, w.w_qkv, &w.b_qkv);

  Tensor q, k, v;
  split_heads(qkv, heads, d, q, k, v);
  if (config_.pos_embedding == PosEmbedding::kRotary) {
    q = apply_rotary(q);
    k = apply_rotary(k);
  }

  // Attention scores: a batched (len, d) x (d, len) — Table II row 2.
  const Tensor kt = transpose_keys(k);
  Tensor scores = kern::batched_matmul(q, kt);
  scores = kern::scale(scores, 1.0f / std::sqrt(static_cast<float>(d)));
  const Tensor probs = config_.kind == ModelKind::kDecoder
                           ? kern::causal_softmax(scores)
                           : kern::softmax_lastdim(scores);

  // Attention over values: batched (len, len) x (len, d) — Table II row 3.
  const Tensor ctx = kern::batched_matmul(probs, v);

  // Post-attention projection: (len, h) x (h, h) — Table II row 4.
  return kern::linear(merge_heads(ctx), w.w_proj, &w.b_proj);
}

Tensor TransformerModel::mlp_block(const Tensor& x,
                                   const LayerWeights& w) const {
  const Tensor up = kern::linear(x, w.w_up, &w.b_up);
  Tensor hidden;
  if (config_.activation == Activation::kSwiGlu) {
    const Tensor gate = kern::linear(x, w.w_gate);
    hidden = kern::swiglu_combine(gate, up);
  } else {
    hidden = kern::gelu(up);
  }
  return kern::linear(hidden, w.w_down, &w.b_down);
}

Tensor TransformerModel::forward(
    const std::vector<std::int64_t>& token_ids) const {
  CODESIGN_CHECK(!token_ids.empty(), "forward needs at least one token");
  CODESIGN_CHECK(
      static_cast<std::int64_t>(token_ids.size()) <= config_.seq_len,
      "sequence longer than the configured s");

  Tensor x = kern::embedding_lookup(weights_.token_embedding, token_ids);
  if (config_.pos_embedding == PosEmbedding::kLearned) {
    for (std::int64_t i = 0; i < x.dim(0); ++i) {
      for (std::int64_t j = 0; j < x.dim(1); ++j) {
        x.at(i, j) += weights_.pos_embedding.at(i, j);
      }
    }
  }

  for (const LayerWeights& w : weights_.layers) {
    const Tensor normed1 = kern::layernorm_lastdim(x, w.ln1_gamma, w.ln1_beta);
    if (config_.parallel_layers) {
      // y = x + Attn(Norm(x)) + MLP(Norm(x))  (paper §VI-C1)
      const Tensor attn = attention_block(normed1, w);
      const Tensor mlp = mlp_block(normed1, w);
      x = kern::add(kern::add(x, attn), mlp);
    } else {
      x = kern::add(x, attention_block(normed1, w));
      const Tensor normed2 =
          kern::layernorm_lastdim(x, w.ln2_gamma, w.ln2_beta);
      x = kern::add(x, mlp_block(normed2, w));
    }
  }

  x = kern::layernorm_lastdim(x, weights_.final_ln_gamma,
                              weights_.final_ln_beta);
  // Logit projection — Table II last row. Weight-tied to the token
  // embedding in the GPT-2 convention, a separate LM head otherwise.
  const Tensor& head = config_.tied_embeddings ? weights_.token_embedding
                                               : weights_.lm_head;
  return kern::linear(x, head);
}

double TransformerModel::next_token_loss(
    const std::vector<std::int64_t>& token_ids) const {
  CODESIGN_CHECK(token_ids.size() >= 2, "need at least 2 tokens for a loss");
  const Tensor logits = forward(token_ids);
  // Predict token[i+1] from position i.
  Tensor trimmed({logits.dim(0) - 1, logits.dim(1)});
  for (std::int64_t i = 0; i + 1 < logits.dim(0); ++i) {
    for (std::int64_t j = 0; j < logits.dim(1); ++j) {
      trimmed.at(i, j) = logits.at(i, j);
    }
  }
  const std::vector<std::int64_t> targets(token_ids.begin() + 1,
                                          token_ids.end());
  return kern::cross_entropy_mean(trimmed, targets);
}

}  // namespace codesign::tfm
