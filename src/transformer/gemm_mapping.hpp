// gemm_mapping.hpp — the transformer → GEMM decomposition (paper Table II).
//
// | Module            | GEMM size                                        |
// |-------------------|--------------------------------------------------|
// | QKV Transform     | (b·s, h) × (h, 3h/t)                              |
// | Attention Score   | batch b·a/t of (s, h/a) × (h/a, s)                |
// | Attn over Value   | batch b·a/t of (s, s) × (s, h/a)                  |
// | Linear Projection | (b·s, h/t) × (h/t, h)                             |
// | MLP h→d_ff        | (b·s, h) × (h, d_ff/t)     (+gate twin for SwiGLU)|
// | MLP d_ff→h        | (b·s, d_ff/t) × (d_ff/t, h)                       |
// | Logit / vocab     | (b·s, h) × (h, v/t)                               |
//
// plus the memory-bound non-GEMM operators (LayerNorms, softmax, rotary,
// activation, residual adds) with their DRAM traffic, so the latency-share
// figures (Figs 2 and 11) can be reproduced.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gemmsim/flash_attention.hpp"
#include "gemmsim/gemm_problem.hpp"
#include "transformer/config.hpp"

namespace codesign::tfm {

enum class LayerOp {
  // GEMM operators (Table II)
  kQkvTransform,
  kAttentionScore,
  kAttentionOverValue,
  kPostAttnProjection,
  kMlpUp,
  kMlpGate,   ///< SwiGLU only
  kMlpDown,
  kLogitProjection,  ///< once per model, not per layer
  // Fused attention (replaces score + softmax + AOV when configured)
  kFlashAttention,
  // Non-GEMM operators
  kLayerNorm1,
  kLayerNorm2,
  kRotaryEmbedding,
  kSoftmax,
  kActivation,
  kResidualAdd1,
  kResidualAdd2,
  kEmbeddingLookup,   ///< once per model
  kFinalLayerNorm,    ///< once per model
};

const char* op_name(LayerOp op);
bool op_is_gemm(LayerOp op);

/// One operator of the execution schedule with everything the latency model
/// needs: a GEMM problem, a FlashAttention problem, or plain DRAM traffic.
struct MappedOp {
  LayerOp op;
  std::optional<gemm::GemmProblem> gemm;
  std::optional<gemm::FlashAttentionProblem> flash;
  double elementwise_bytes = 0.0;  ///< DRAM traffic of non-GEMM ops
  double flops = 0.0;              ///< useful math (0 for pure data movement)

  bool is_gemm() const { return gemm.has_value(); }
};

/// Individual Table-II constructors (all validated against `config`).
gemm::GemmProblem qkv_gemm(const TransformerConfig& config);
gemm::GemmProblem attention_score_bmm(const TransformerConfig& config);
gemm::GemmProblem attention_over_value_bmm(const TransformerConfig& config);
gemm::GemmProblem post_attn_projection_gemm(const TransformerConfig& config);
gemm::GemmProblem mlp_up_gemm(const TransformerConfig& config);
gemm::GemmProblem mlp_down_gemm(const TransformerConfig& config);
gemm::GemmProblem logit_gemm(const TransformerConfig& config);
gemm::FlashAttentionProblem flash_attention_problem(
    const TransformerConfig& config);

/// The GEMMs of one transformer layer in execution order (QKV, score, AOV,
/// projection, MLP up [, gate], MLP down) — or with score/AOV replaced by
/// nothing when attention == kFlash (the fused op is not a plain GEMM).
std::vector<gemm::GemmProblem> layer_gemms(const TransformerConfig& config);

/// The complete per-layer operator schedule, including non-GEMM ops, in
/// execution order.
std::vector<MappedOp> layer_ops(const TransformerConfig& config);

/// Allocation-reusing twin of layer_ops(): clears `out` and fills it with
/// the identical schedule, keeping the vector's capacity. The batched
/// search hot path calls this once per candidate with a per-worker buffer.
void layer_ops_into(const TransformerConfig& config,
                    std::vector<MappedOp>& out);

/// Model-level ops outside the layer stack: embedding lookup, final
/// LayerNorm, logit projection.
std::vector<MappedOp> model_level_ops(const TransformerConfig& config);

}  // namespace codesign::tfm
