// params.hpp — parameter counting.
//
// The paper gives P = 12h²L + 13hL + (v+s)h and the common approximation
// P ≈ 12h²L. This module provides both formulas *and* an explicit
// enumeration of every weight tensor in the model, so the formulas are
// tested against ground truth instead of against each other.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "transformer/config.hpp"

namespace codesign::tfm {

/// One weight tensor of the model.
struct WeightInfo {
  std::string name;                 ///< e.g. "layer3.mlp.w_up"
  std::vector<std::int64_t> shape;  ///< row-major extents
  std::int64_t count = 0;           ///< product of shape
};

/// Enumerate every weight of the full model in definition order: token
/// embedding, learned positional embedding (if used), per-layer blocks
/// (LN1, QKV, projection, LN2, MLP matrices + biases), final LayerNorm,
/// and — for untied configs (tied_embeddings == false, the GPT-NeoX /
/// Llama convention) — the separate LM head.
std::vector<WeightInfo> enumerate_weights(const TransformerConfig& config);

/// Ground truth: the sum of enumerate_weights counts, computed in closed
/// form (no per-tensor enumeration — this sits on the search hot path).
std::int64_t exact_param_count(const TransformerConfig& config);

/// Paper formula P = 12h²L + 13hL + (v+s)h. Exact for the GELU/4h/learned-
/// positions architecture of §III-C; for variants (SwiGLU, rotary) prefer
/// exact_param_count.
double formula_param_count(const TransformerConfig& config);

/// Leading-order approximation P ≈ 12h²L.
double approx_param_count(const TransformerConfig& config);

}  // namespace codesign::tfm
