#include "transformer/layer_model.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "transformer/flops.hpp"

namespace codesign::tfm {

OpLatency op_latency(const MappedOp& op, const gemm::GemmSimulator& sim) {
  OpLatency out;
  out.op = op.op;
  out.name = op_name(op.op);
  out.flops = op.flops;

  if (op.gemm.has_value()) {
    const gemm::KernelEstimate est = sim.estimate(*op.gemm);
    out.is_gemm = true;
    out.time = est.time;
    out.tflops = est.tflops();
    out.detail = str_format("%s tile=%s bound=%s waves=%lld",
                            op.gemm->to_string().c_str(),
                            est.tile.name().c_str(),
                            gemm::bound_name(est.bound),
                            static_cast<long long>(est.wave_q.waves));
    return out;
  }

  if (op.flash.has_value()) {
    const gemm::FlashAttentionEstimate est = sim.estimate_flash(*op.flash);
    out.is_gemm = true;  // fused matmuls count toward the GEMM share
    out.time = est.time;
    out.tflops = est.tflops();
    out.detail = str_format("flash(s=%lld d=%lld) bound=%s",
                            static_cast<long long>(op.flash->seq),
                            static_cast<long long>(op.flash->head_dim),
                            gemm::bound_name(est.bound));
    return out;
  }

  // Non-GEMM: memory-bound elementwise/reduction kernel.
  out.bytes = op.elementwise_bytes;
  out.time = op.elementwise_bytes / sim.gpu().achievable_bandwidth() +
             sim.gpu().kernel_launch_overhead;
  out.tflops = op.flops > 0.0 ? op.flops / out.time / 1e12 : 0.0;
  out.detail = human_bytes(op.elementwise_bytes) + " traffic";
  return out;
}

namespace {

/// Parallel-layer formulation fuses the attention and MLP branches
/// (§VI-C1): one shared LayerNorm and one fused residual, saving the
/// second LN's and one residual add's traffic + launches. The _into
/// variant reuses the buffer's capacity for the batched hot path; the
/// in-place erase preserves op order, so both produce the identical
/// schedule.
void schedule_for_into(const TransformerConfig& c,
                       std::vector<MappedOp>& ops) {
  layer_ops_into(c, ops);
  if (!c.parallel_layers) return;
  std::erase_if(ops, [](const MappedOp& op) {
    return op.op == LayerOp::kLayerNorm2 || op.op == LayerOp::kResidualAdd1;
  });
}

std::vector<MappedOp> schedule_for(const TransformerConfig& c) {
  std::vector<MappedOp> ops;
  schedule_for_into(c, ops);
  return ops;
}

}  // namespace

std::vector<MappedOp> layer_schedule(const TransformerConfig& config) {
  return schedule_for(config);
}

double LayerLatencyReport::share_of(LayerOp op) const {
  CODESIGN_CHECK(total_time > 0.0, "report has zero total time");
  double t = 0.0;
  for (const OpLatency& o : ops) {
    if (o.op == op) t += o.time;
  }
  return t / total_time;
}

double LayerLatencyReport::gemm_share_of(LayerOp op) const {
  CODESIGN_CHECK(gemm_time > 0.0, "report has zero GEMM time");
  double t = 0.0;
  for (const OpLatency& o : ops) {
    if (o.op == op && o.is_gemm) t += o.time;
  }
  return t / gemm_time;
}

double layer_total_time(const TransformerConfig& config,
                        const gemm::GemmSimulator& sim) {
  // Must stay in lockstep with op_latency()/analyze_layer(): same estimates,
  // summed in the same op order, so the result is bit-identical to
  // analyze_layer().total_time. What it skips is everything reporting-only —
  // the OpLatency records and their formatted detail strings — which
  // dominate the cost of a search evaluating thousands of candidates.
  config.validate();
  double total = 0.0;
  for (const MappedOp& op : schedule_for(config)) {
    if (op.gemm.has_value()) {
      total += sim.estimate(*op.gemm).time;
    } else if (op.flash.has_value()) {
      total += sim.estimate_flash(*op.flash).time;
    } else {
      total += op.elementwise_bytes / sim.gpu().achievable_bandwidth() +
               sim.gpu().kernel_launch_overhead;
    }
  }
  return total;
}

double layer_total_time(const TransformerConfig& config,
                        const gemm::GemmSimulator& sim, LayerWorkspace& ws) {
  // The batched hot path: same schedule, same estimates, same summation
  // order as the scalar overload — only the mechanics change. GEMMs are
  // gathered in op order and resolved with one estimate_times() call
  // (grouped cache probes, SoA scan on misses); flash and elementwise
  // terms are computed inline exactly as the scalar loop does, so the
  // left-to-right sum adds the identical doubles in the identical order.
  config.validate();
  schedule_for_into(config, ws.ops);
  ws.gemms.clear();
  for (const MappedOp& op : ws.ops) {
    if (op.gemm.has_value()) ws.gemms.push_back(*op.gemm);
  }
  ws.gemm_times.resize(ws.gemms.size());
  sim.estimate_times(ws.gemms, ws.gemm_times, ws.batch);
  double total = 0.0;
  std::size_t g = 0;
  for (const MappedOp& op : ws.ops) {
    if (op.gemm.has_value()) {
      total += ws.gemm_times[g++];
    } else if (op.flash.has_value()) {
      total += sim.estimate_flash(*op.flash).time;
    } else {
      total += op.elementwise_bytes / sim.gpu().achievable_bandwidth() +
               sim.gpu().kernel_launch_overhead;
    }
  }
  return total;
}

LayerLatencyReport analyze_layer(const TransformerConfig& config,
                                 const gemm::GemmSimulator& sim) {
  config.validate();
  LayerLatencyReport r;
  r.config = config;
  for (const MappedOp& op : schedule_for(config)) {
    r.ops.push_back(op_latency(op, sim));
  }
  for (const OpLatency& o : r.ops) {
    r.total_time += o.time;
    if (o.is_gemm) {
      r.gemm_time += o.time;
    } else {
      r.non_gemm_time += o.time;
    }
  }
  r.layer_flops = layer_forward_flops(config);
  r.throughput_tflops = r.layer_flops / r.total_time / 1e12;
  r.gemm_fraction = r.gemm_time / r.total_time;
  return r;
}

ModelLatencyReport analyze_model(const TransformerConfig& config,
                                 const gemm::GemmSimulator& sim) {
  ModelLatencyReport r;
  r.config = config;
  r.layer = analyze_layer(config, sim);
  for (const MappedOp& op : model_level_ops(config)) {
    const OpLatency lat = op_latency(op, sim);
    switch (op.op) {
      case LayerOp::kEmbeddingLookup: r.embedding_time = lat.time; break;
      case LayerOp::kFinalLayerNorm: r.final_ln_time = lat.time; break;
      case LayerOp::kLogitProjection: r.logit_time = lat.time; break;
      default:
        throw Error("unexpected model-level op");
    }
  }
  r.total_time = static_cast<double>(config.num_layers) * r.layer.total_time +
                 r.embedding_time + r.final_ln_time + r.logit_time;
  r.model_flops = model_forward_flops(config);
  r.throughput_tflops = r.model_flops / r.total_time / 1e12;
  r.tokens_per_second = static_cast<double>(config.tokens()) / r.total_time;
  return r;
}

}  // namespace codesign::tfm
