#include "transformer/config_parse.hpp"

#include <set>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace codesign::tfm {

namespace {

Activation parse_activation(const std::string& v) {
  if (iequals(v, "gelu")) return Activation::kGelu;
  if (iequals(v, "swiglu")) return Activation::kSwiGlu;
  throw ConfigError("unknown activation '" + v + "' (gelu|swiglu)");
}

PosEmbedding parse_pos(const std::string& v) {
  if (iequals(v, "learned")) return PosEmbedding::kLearned;
  if (iequals(v, "rotary")) return PosEmbedding::kRotary;
  if (iequals(v, "alibi")) return PosEmbedding::kAlibi;
  throw ConfigError("unknown positional embedding '" + v +
                    "' (learned|rotary|alibi)");
}

AttentionImpl parse_attn(const std::string& v) {
  if (iequals(v, "bmm")) return AttentionImpl::kBmm;
  if (iequals(v, "flash")) return AttentionImpl::kFlash;
  throw ConfigError("unknown attention impl '" + v + "' (bmm|flash)");
}

ModelKind parse_kind(const std::string& v) {
  if (iequals(v, "decoder")) return ModelKind::kDecoder;
  if (iequals(v, "encoder")) return ModelKind::kEncoder;
  throw ConfigError("unknown model kind '" + v + "' (decoder|encoder)");
}

bool parse_flag(const std::string& key, const std::string& v) {
  if (v == "1" || iequals(v, "true")) return true;
  if (v == "0" || iequals(v, "false")) return false;
  throw ConfigError("key '" + key + "' expects 0/1, got '" + v + "'");
}

/// parse_int with the offending key in the error: malformed, overflowing,
/// or non-integral values become a typed ConfigError naming the key
/// instead of a bare Error (or a silently clamped number).
std::int64_t parse_config_int(const std::string& key, const std::string& v) {
  try {
    return parse_int(v);
  } catch (const Error& e) {
    throw ConfigError("key '" + key + "': " + e.what());
  }
}

}  // namespace

TransformerConfig parse_config_string(const std::string& spec) {
  TransformerConfig c;
  c.name = "custom";
  c.hidden_size = 0;  // force explicit h/a/L
  c.num_heads = 0;
  c.num_layers = 0;

  std::set<std::string> seen;
  for (const std::string& part : split(spec, ',')) {
    const std::string item{trim(part)};
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      throw ConfigError("malformed config entry '" + item +
                        "' (want key=value)");
    }
    const std::string key = to_lower(item.substr(0, eq));
    const std::string value = item.substr(eq + 1);

    // Canonicalize aliases so "L=24,layers=32" is caught as a duplicate.
    std::string canonical = key;
    if (canonical == "layers") canonical = "l";
    if (canonical == "seq") canonical = "s";
    if (canonical == "vocab") canonical = "v";
    if (canonical == "tp") canonical = "t";
    if (!seen.insert(canonical).second) {
      throw ConfigError("duplicate config key '" + key + "' in '" + spec +
                        "'");
    }

    if (key == "h") {
      c.hidden_size = parse_config_int(key, value);
    } else if (key == "a") {
      c.num_heads = parse_config_int(key, value);
    } else if (key == "l" || key == "layers") {
      c.num_layers = parse_config_int(key, value);
    } else if (key == "s" || key == "seq") {
      c.seq_len = parse_config_int(key, value);
    } else if (key == "b") {
      c.microbatch = parse_config_int(key, value);
    } else if (key == "v" || key == "vocab") {
      c.vocab_size = parse_config_int(key, value);
    } else if (key == "t" || key == "tp") {
      c.tensor_parallel = parse_config_int(key, value);
    } else if (key == "kv") {
      c.num_kv_heads = parse_config_int(key, value);
    } else if (key == "dff") {
      c.mlp_intermediate = parse_config_int(key, value);
    } else if (key == "act") {
      c.activation = parse_activation(value);
    } else if (key == "pos") {
      c.pos_embedding = parse_pos(value);
    } else if (key == "attn") {
      c.attention = parse_attn(value);
    } else if (key == "kind") {
      c.kind = parse_kind(value);
    } else if (key == "parallel") {
      c.parallel_layers = parse_flag(key, value);
    } else if (key == "tied") {
      c.tied_embeddings = parse_flag(key, value);
    } else if (key == "name") {
      c.name = value;
    } else {
      throw ConfigError("unknown config key '" + key + "'");
    }
  }

  if (c.hidden_size <= 0 || c.num_heads <= 0 || c.num_layers <= 0) {
    throw ConfigError(
        "config string must set at least h=, a=, and L= (got '" + spec + "')");
  }
  c.validate();
  return c;
}

const ConfigEntry* ConfigSection::find(const std::string& key) const {
  for (const ConfigEntry& e : entries) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

std::vector<ConfigSection> parse_config_sections(const std::string& text,
                                                 const std::string& origin) {
  const auto where = [&](int line) {
    return origin + ":" + std::to_string(line) + ": ";
  };

  std::vector<ConfigSection> sections;
  int line_no = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++line_no;
    std::string line{trim(raw)};
    // Strip trailing comments; full-line comments fall out as empty lines.
    const auto hash = line.find_first_of("#;");
    if (hash != std::string::npos) line = std::string{trim(line.substr(0, hash))};
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw ConfigError(where(line_no) + "malformed section header '" +
                          line + "' (want [name])");
      }
      const std::string name =
          to_lower(std::string{trim(line.substr(1, line.size() - 2))});
      if (name.empty()) {
        throw ConfigError(where(line_no) + "empty section name");
      }
      sections.push_back({name, line_no, {}});
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ConfigError(where(line_no) + "expected 'key = value' or " +
                        "'[section]', got '" + line + "'");
    }
    if (sections.empty()) {
      throw ConfigError(where(line_no) + "entry before any [section] header");
    }
    ConfigSection& section = sections.back();
    ConfigEntry entry;
    entry.key = to_lower(std::string{trim(line.substr(0, eq))});
    entry.value = std::string{trim(line.substr(eq + 1))};
    entry.line = line_no;
    if (entry.value.empty()) {
      throw ConfigError(where(line_no) + "key '" + entry.key +
                        "' has an empty value");
    }
    if (const ConfigEntry* prior = section.find(entry.key)) {
      throw ConfigError(where(line_no) + "duplicate key '" + entry.key +
                        "' in section [" + section.name + "] (first at line " +
                        std::to_string(prior->line) + ")");
    }
    section.entries.push_back(std::move(entry));
  }
  return sections;
}

}  // namespace codesign::tfm
