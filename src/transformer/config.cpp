#include "transformer/config.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace codesign::tfm {

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::kGelu: return "gelu";
    case Activation::kSwiGlu: return "swiglu";
  }
  return "?";
}

const char* pos_embedding_name(PosEmbedding p) {
  switch (p) {
    case PosEmbedding::kLearned: return "learned";
    case PosEmbedding::kRotary: return "rotary";
    case PosEmbedding::kAlibi: return "alibi";
  }
  return "?";
}

const char* attention_impl_name(AttentionImpl a) {
  switch (a) {
    case AttentionImpl::kBmm: return "bmm";
    case AttentionImpl::kFlash: return "flash";
  }
  return "?";
}

const char* model_kind_name(ModelKind k) {
  switch (k) {
    case ModelKind::kDecoder: return "decoder";
    case ModelKind::kEncoder: return "encoder";
  }
  return "?";
}

std::int64_t TransformerConfig::head_dim() const {
  CODESIGN_CHECK(num_heads > 0, "num_heads must be positive");
  return hidden_size / num_heads;
}

std::int64_t TransformerConfig::kv_heads() const {
  return num_kv_heads > 0 ? num_kv_heads : num_heads;
}

std::int64_t TransformerConfig::qkv_width() const {
  return hidden_size + 2 * kv_heads() * head_dim();
}

std::int64_t TransformerConfig::d_ff() const {
  if (mlp_intermediate > 0) return mlp_intermediate;
  if (activation == Activation::kSwiGlu) {
    // The 8h/3 suggestion from Shazeer keeps SwiGLU's 3-matrix MLP at the
    // parameter count of the classic 2-matrix 4h MLP (paper §VII-B). The
    // paper's point is precisely that this default is only a suggestion;
    // advisor::search_mlp_intermediate finds better-aligned values.
    return static_cast<std::int64_t>(std::llround(8.0 * hidden_size / 3.0));
  }
  return 4 * hidden_size;
}

std::int64_t TransformerConfig::heads_per_tp() const {
  return num_heads / tensor_parallel;
}

std::int64_t TransformerConfig::hidden_per_tp() const {
  return hidden_size / tensor_parallel;
}

TransformerConfig TransformerConfig::with_heads(std::int64_t a) const {
  TransformerConfig c = *this;
  c.num_heads = a;
  return c;
}

TransformerConfig TransformerConfig::with_hidden(std::int64_t h) const {
  TransformerConfig c = *this;
  c.hidden_size = h;
  return c;
}

TransformerConfig TransformerConfig::with_layers(std::int64_t l) const {
  TransformerConfig c = *this;
  c.num_layers = l;
  return c;
}

TransformerConfig TransformerConfig::with_microbatch(std::int64_t b) const {
  TransformerConfig c = *this;
  c.microbatch = b;
  return c;
}

TransformerConfig TransformerConfig::with_seq_len(std::int64_t s) const {
  TransformerConfig c = *this;
  c.seq_len = s;
  return c;
}

TransformerConfig TransformerConfig::with_vocab(std::int64_t v) const {
  TransformerConfig c = *this;
  c.vocab_size = v;
  return c;
}

TransformerConfig TransformerConfig::with_tensor_parallel(
    std::int64_t t) const {
  TransformerConfig c = *this;
  c.tensor_parallel = t;
  return c;
}

TransformerConfig TransformerConfig::with_name(std::string n) const {
  TransformerConfig c = *this;
  c.name = std::move(n);
  return c;
}

void TransformerConfig::validate() const {
  auto fail = [this](const std::string& what) {
    throw ConfigError("TransformerConfig '" + name + "': " + what);
  };
  if (hidden_size <= 0) fail("hidden_size must be positive");
  if (num_heads <= 0) fail("num_heads must be positive");
  if (num_layers <= 0) fail("num_layers must be positive");
  if (seq_len <= 0) fail("seq_len must be positive");
  if (microbatch <= 0) fail("microbatch must be positive");
  if (vocab_size <= 0) fail("vocab_size must be positive");
  if (tensor_parallel < 1) fail("tensor_parallel must be >= 1");
  if (hidden_size % num_heads != 0) {
    fail(str_format("hidden_size %lld not divisible by num_heads %lld",
                    static_cast<long long>(hidden_size),
                    static_cast<long long>(num_heads)));
  }
  if (num_heads % tensor_parallel != 0) {
    fail("num_heads not divisible by tensor_parallel (the paper's "
         "(b*a)/t-integral rule requires t | a)");
  }
  if (num_kv_heads < 0) fail("num_kv_heads must be >= 0");
  if (num_kv_heads > 0) {
    if (num_kv_heads > num_heads) fail("num_kv_heads exceeds num_heads");
    if (num_heads % num_kv_heads != 0) {
      fail("num_heads must be a multiple of num_kv_heads (integral GQA "
           "group size)");
    }
    if (num_kv_heads % tensor_parallel != 0) {
      fail("num_kv_heads not divisible by tensor_parallel");
    }
  }
  if (hidden_size % tensor_parallel != 0) {
    fail("hidden_size not divisible by tensor_parallel");
  }
  if (d_ff() % tensor_parallel != 0) {
    fail("mlp intermediate size not divisible by tensor_parallel");
  }
  if (vocab_size % tensor_parallel != 0) {
    fail("vocab_size not divisible by tensor_parallel");
  }
  if (mlp_intermediate < 0) fail("mlp_intermediate must be >= 0");
}

std::string TransformerConfig::to_string() const {
  return str_format(
      "%s (h=%lld a=%lld L=%lld s=%lld b=%lld v=%lld t=%lld d_ff=%lld %s/%s/%s%s)",
      name.c_str(), static_cast<long long>(hidden_size),
      static_cast<long long>(num_heads), static_cast<long long>(num_layers),
      static_cast<long long>(seq_len), static_cast<long long>(microbatch),
      static_cast<long long>(vocab_size),
      static_cast<long long>(tensor_parallel),
      static_cast<long long>(d_ff()), activation_name(activation),
      pos_embedding_name(pos_embedding), attention_impl_name(attention),
      parallel_layers ? "/parallel" : "");
}

}  // namespace codesign::tfm
