// layer_model.hpp — end-to-end latency model of the transformer layer.
//
// Combines the Table-II GEMM mapping with the GEMM simulator and a
// bandwidth model for the non-GEMM operators to produce:
//   * per-operator latencies and shares  (Figs 2 and 11)
//   * single-layer throughput            (Fig 1)
//   * whole-model step latency and throughput
//
// The non-GEMM operators are modelled as memory-bound kernels:
// time = DRAM traffic / achievable bandwidth + launch overhead. Parallel-
// layer models (paper §VI-C1) fuse the attention and MLP branches, which
// removes one LayerNorm and one residual add worth of kernel traffic.
#pragma once

#include <string>
#include <vector>

#include "gemmsim/simulator.hpp"
#include "transformer/config.hpp"
#include "transformer/gemm_mapping.hpp"

namespace codesign::tfm {

/// Latency of a single operator instance.
struct OpLatency {
  LayerOp op;
  std::string name;       ///< op_name(op)
  bool is_gemm = false;
  double time = 0.0;      ///< seconds
  double flops = 0.0;     ///< useful math
  double bytes = 0.0;     ///< DRAM traffic (non-GEMM ops; 0 for GEMMs)
  double tflops = 0.0;    ///< flops / time / 1e12 (0 for pure data movement)
  std::string detail;     ///< e.g. the GEMM size, tile, and bound
};

struct LayerLatencyReport {
  TransformerConfig config;
  std::vector<OpLatency> ops;

  double gemm_time = 0.0;
  double non_gemm_time = 0.0;
  double total_time = 0.0;
  double layer_flops = 0.0;        ///< useful GEMM math in the layer
  double throughput_tflops = 0.0;  ///< layer_flops / total_time / 1e12
  double gemm_fraction = 0.0;      ///< gemm_time / total_time (Fig 2's point)

  /// Share of total layer time spent in one operator kind.
  double share_of(LayerOp op) const;
  /// Share of *GEMM* time spent in one GEMM kind (Fig 11 normalization).
  double gemm_share_of(LayerOp op) const;
};

/// The layer's executed operator schedule: layer_ops() with the
/// parallel-layer fusion applied (one LayerNorm and one residual dropped
/// when config.parallel_layers). Every latency entry point in this header
/// walks exactly this schedule; the attribution rollups reuse it so their
/// totals stay bit-identical to analyze_layer().
std::vector<MappedOp> layer_schedule(const TransformerConfig& config);

/// Analyze one transformer layer on the simulator's GPU.
LayerLatencyReport analyze_layer(const TransformerConfig& config,
                                 const gemm::GemmSimulator& sim);

/// Just the layer's total time, bit-identical to
/// analyze_layer().total_time but without building the per-op report
/// (no OpLatency records, no detail strings). The search hot path: a
/// design-space sweep only ranks by this number.
double layer_total_time(const TransformerConfig& config,
                        const gemm::GemmSimulator& sim);

/// Reusable buffers for the batched layer evaluation. Keep one per worker
/// thread; after warm-up, evaluating a candidate allocates nothing.
struct LayerWorkspace {
  std::vector<MappedOp> ops;               ///< reused schedule buffer
  std::vector<gemm::GemmProblem> gemms;    ///< the layer's GEMMs, in op order
  std::vector<double> gemm_times;
  gemm::GemmSimulator::BatchWorkspace batch;
};

/// Batched twin of layer_total_time(): gathers the layer's GEMMs and
/// resolves them through one GemmSimulator::estimate_times() call (grouped
/// cache probes, SoA catalogue scan on misses) instead of one estimate()
/// per op. Bit-identical to the scalar overload — same estimates, summed
/// in the same op order.
double layer_total_time(const TransformerConfig& config,
                        const gemm::GemmSimulator& sim, LayerWorkspace& ws);

struct ModelLatencyReport {
  TransformerConfig config;
  LayerLatencyReport layer;        ///< one representative layer
  double embedding_time = 0.0;
  double final_ln_time = 0.0;
  double logit_time = 0.0;
  double total_time = 0.0;         ///< L·layer + model-level ops
  double model_flops = 0.0;        ///< forward GEMM math of the whole model
  double throughput_tflops = 0.0;
  double tokens_per_second = 0.0;  ///< b·s / total_time (forward pass)
};

/// Analyze a full forward pass: L identical layers plus embedding lookup,
/// final LayerNorm, and the logit projection.
ModelLatencyReport analyze_model(const TransformerConfig& config,
                                 const gemm::GemmSimulator& sim);

/// Latency of one MappedOp on the simulator's GPU (exposed for tests and
/// the inference model).
OpLatency op_latency(const MappedOp& op, const gemm::GemmSimulator& sim);

}  // namespace codesign::tfm
