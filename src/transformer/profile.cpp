#include "transformer/profile.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"
#include "obs/events.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/layer_model.hpp"

namespace codesign::tfm {

ProfileResult profile_model(const TransformerConfig& config,
                            const gemm::GemmSimulator& sim,
                            const ProfileOptions& options) {
  config.validate();
  CODESIGN_CHECK(options.layers >= 1, "profile needs at least one layer");

  const bool metrics_were_on = obs::MetricsRegistry::enabled();
  obs::MetricsRegistry::set_enabled(true);
  obs::ScopedRecorder scoped;
  obs::EventRecorder& recorder = scoped.recorder();

  const std::vector<MappedOp> schedule = layer_ops(config);
  double clock_us = 0.0;
  for (std::int64_t l = 0; l < options.layers; ++l) {
    for (const MappedOp& op : schedule) {
      // Anchor the simulator's context-free events (selection trail, DES
      // blocks) at this op's start on the simulated timeline.
      obs::EventRecorder::set_time_origin_us(clock_us);
      const OpLatency lat = op_latency(op, sim);
      if (op.is_gemm() && options.include_des) {
        sim.simulate(*op.gemm);
      }
      obs::TraceEvent span;
      span.name = str_format("L%lld.%s", static_cast<long long>(l),
                             lat.name.c_str());
      span.category = "op";
      span.tid = lat.is_gemm ? obs::kTidGemmOps : obs::kTidOtherOps;
      span.ts_us = clock_us;
      span.dur_us = to_us(lat.time);
      span.clock = obs::EventClock::kSimulated;
      span.args.emplace_back("detail", lat.detail);
      recorder.record(std::move(span));
      clock_us += to_us(lat.time);
    }
  }
  obs::EventRecorder::set_time_origin_us(0.0);

  ProfileResult r;
  r.total_time = clock_us * 1e-6;
  r.op_events = recorder.count("op");
  r.select_events = recorder.count("select");
  r.des_events = recorder.count("des");

  obs::ChromeTraceOptions trace_options;
  trace_options.other_data.emplace_back("model", config.to_string());
  trace_options.other_data.emplace_back("gpu", sim.gpu().id);
  trace_options.other_data.emplace_back(
      "layers", std::to_string(options.layers));
  r.trace_json = recorder.chrome_trace_json(trace_options);

  if (sim.cache() != nullptr) {
    sim.cache()->publish_metrics(obs::MetricsRegistry::global());
  }
  r.metrics = obs::MetricsRegistry::global().snapshot();

  obs::MetricsRegistry::set_enabled(metrics_were_on);
  return r;
}

}  // namespace codesign::tfm
