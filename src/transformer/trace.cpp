#include "transformer/trace.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/layer_model.hpp"

namespace codesign::tfm {

namespace {

/// Minimal JSON string escaping (names are ASCII identifiers, but stay
/// correct for quotes/backslashes).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void emit_event(std::ostringstream& os, bool& first, const std::string& name,
                int tid, double ts_us, double dur_us,
                const std::string& args_detail) {
  if (!first) os << ",";
  first = false;
  os << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"X\",\"pid\":0,"
     << "\"tid\":" << tid << ",\"ts\":" << str_format("%.3f", ts_us)
     << ",\"dur\":" << str_format("%.3f", dur_us) << ",\"args\":{\"detail\":\""
     << json_escape(args_detail) << "\"}}";
}

}  // namespace

std::string trace_json(const TransformerConfig& config,
                       const gemm::GemmSimulator& sim,
                       const TraceOptions& options) {
  config.validate();
  CODESIGN_CHECK(options.layers >= 1, "trace needs at least one layer");

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  double clock_us = 0.0;

  auto emit_op = [&](const OpLatency& op) {
    emit_event(os, first, op.name, op.is_gemm ? 1 : 2, clock_us,
               to_us(op.time), op.detail);
    clock_us += to_us(op.time);
  };

  std::vector<OpLatency> model_level;
  if (options.include_model_level) {
    for (const MappedOp& op : model_level_ops(config)) {
      model_level.push_back(op_latency(op, sim));
    }
    // Embedding lookup precedes the layer stack.
    emit_op(model_level[0]);
  }

  const LayerLatencyReport layer = analyze_layer(config, sim);
  for (std::int64_t l = 0; l < options.layers; ++l) {
    for (const OpLatency& op : layer.ops) {
      emit_event(os, first,
                 str_format("L%lld.%s", static_cast<long long>(l),
                            op.name.c_str()),
                 op.is_gemm ? 1 : 2, clock_us, to_us(op.time), op.detail);
      clock_us += to_us(op.time);
    }
  }

  if (options.include_model_level) {
    emit_op(model_level[1]);  // final LayerNorm
    emit_op(model_level[2]);  // logit projection
  }

  os << "],\"otherData\":{\"model\":\"" << json_escape(config.to_string())
     << "\",\"gpu\":\"" << json_escape(sim.gpu().id) << "\"}}";
  return os.str();
}

}  // namespace codesign::tfm
