// profile.hpp — one-call deep profiling of a model's simulated execution.
//
// profile_model() runs the layer schedule with the observability layer
// fully armed: an EventRecorder captures the operator timeline, the
// kernel-selection decision trail of every GEMM (each candidate tile and
// why it lost), and the discrete-event per-SM block timeline; the metrics
// registry accumulates the simulator's counters. All simulator events are
// stamped with simulated time — the per-op time origin is advanced along
// the schedule — so the resulting chrome-trace JSON is byte-deterministic
// for a given (model, GPU) pair. This is the engine behind the
// `codesign profile` subcommand.
#pragma once

#include <cstdint>
#include <string>

#include "gemmsim/simulator.hpp"
#include "obs/metrics.hpp"
#include "transformer/config.hpp"

namespace codesign::tfm {

struct ProfileOptions {
  /// Trace this many consecutive layers of the schedule.
  std::int64_t layers = 1;
  /// Run the DES for every GEMM op and record the per-SM block timeline.
  bool include_des = true;
};

struct ProfileResult {
  /// Chrome Trace Event JSON: op spans (tids 1/2), kernel-selection
  /// instants (tid 3), DES blocks (tid 100+sm). Open in chrome://tracing
  /// or https://ui.perfetto.dev.
  std::string trace_json;
  /// Full metrics snapshot (including best-effort series).
  obs::MetricsSnapshot metrics;
  double total_time = 0.0;  ///< simulated seconds spanned by the op track
  std::size_t op_events = 0;
  std::size_t select_events = 0;
  std::size_t des_events = 0;
};

/// Profile `options.layers` layers of `config` on the simulator's GPU.
/// Temporarily installs an event recorder and enables metrics; both are
/// restored on return. Deterministic: all recorded simulator events carry
/// simulated timestamps.
ProfileResult profile_model(const TransformerConfig& config,
                            const gemm::GemmSimulator& sim,
                            const ProfileOptions& options = {});

}  // namespace codesign::tfm
