#include "transformer/model_zoo.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace codesign::tfm {

namespace {

TransformerConfig base(std::string name, std::int64_t h, std::int64_t a,
                       std::int64_t layers, std::int64_t vocab,
                       std::int64_t seq = 2048) {
  TransformerConfig c;
  c.name = std::move(name);
  c.hidden_size = h;
  c.num_heads = a;
  c.num_layers = layers;
  c.vocab_size = vocab;
  c.seq_len = seq;
  c.microbatch = 4;
  return c;
}

TransformerConfig pythia(std::string name, std::int64_t h, std::int64_t a,
                         std::int64_t layers) {
  // Pythia models (Biderman et al. 2023): GPT-NeoX architecture — rotary
  // embeddings, parallel attention+MLP, vocab padded to 50304.
  TransformerConfig c = base(std::move(name), h, a, layers, 50304);
  c.pos_embedding = PosEmbedding::kRotary;
  c.parallel_layers = true;
  c.tied_embeddings = false;  // GPT-NeoX keeps a separate LM head
  return c;
}

TransformerConfig llama2(std::string name, std::int64_t h, std::int64_t a,
                         std::int64_t layers, std::int64_t d_ff) {
  TransformerConfig c = base(std::move(name), h, a, layers, 32000, 4096);
  c.pos_embedding = PosEmbedding::kRotary;
  c.activation = Activation::kSwiGlu;
  c.mlp_intermediate = d_ff;
  c.tied_embeddings = false;  // Llama keeps a separate LM head
  return c;
}

const std::map<std::string, TransformerConfig>& registry() {
  static const std::map<std::string, TransformerConfig> reg = [] {
    std::map<std::string, TransformerConfig> m;
    auto add = [&m](TransformerConfig c) {
      c.validate();
      m.emplace(c.name, std::move(c));
    };

    // --- GPT-3 family (Brown et al. 2020, Table 2.1). The 13B entry uses
    // h=5120 (the paper's 5140 is a widely-noted typo that no replication
    // kept, since 5140/40 = 128.5 is not an integral head dim).
    add(base("gpt3-125m", 768, 12, 12, 50257));
    add(base("gpt3-350m", 1024, 16, 24, 50257));
    add(base("gpt3-760m", 1536, 16, 24, 50257));
    add(base("gpt3-1.3b", 2048, 16, 24, 50257));
    add(base("gpt3-2.7b", 2560, 32, 32, 50257));
    add(base("gpt3-6.7b", 4096, 32, 32, 50257));
    add(base("gpt3-13b", 5120, 40, 40, 50257));
    add(base("gpt3-175b", 12288, 96, 96, 50257));

    // --- Fig-1 variants defined by the paper: same h (2560) and layer
    // count, different head counts. C2 (a=40, h/a=64) is the efficient
    // re-shape that trains ~1.18x faster than the default (a=32, h/a=80);
    // C1 (a=64, h/a=40) is the badly-shaped comparator.
    add(base("gpt3-2.7b-c1", 2560, 64, 32, 50257));
    add(base("gpt3-2.7b-c2", 2560, 40, 32, 50257));

    // --- GPT-3 2.7B clones (paper §VI-B: architectures copied from Brown
    // et al., inheriting the h/a = 80 inefficiency).
    add(base("gpt-neo-2.7b", 2560, 32, 32, 50257));
    {
      TransformerConfig c = base("opt-2.7b", 2560, 32, 32, 50272);
      add(c);
    }
    {
      TransformerConfig c = base("redpajama-incite-3b", 2560, 32, 32, 50432);
      c.pos_embedding = PosEmbedding::kRotary;
      c.parallel_layers = true;
      add(c);
    }

    // --- Pythia suite (Fig 13).
    add(pythia("pythia-70m", 512, 8, 6));
    add(pythia("pythia-160m", 768, 12, 12));
    add(pythia("pythia-410m", 1024, 16, 24));
    add(pythia("pythia-1b", 2048, 8, 16));
    add(pythia("pythia-1.4b", 2048, 16, 24));
    add(pythia("pythia-2.8b", 2560, 32, 32));
    add(pythia("pythia-6.9b", 4096, 32, 32));
    add(pythia("pythia-12b", 5120, 40, 36));

    // --- GPT-NeoX-20B (Black et al.): the library the paper's transformer
    // implementations are ported from.
    {
      TransformerConfig c = base("gpt-neox-20b", 6144, 64, 44, 50432);
      c.pos_embedding = PosEmbedding::kRotary;
      c.parallel_layers = true;
      c.tied_embeddings = false;
      add(c);
    }

    // --- Llama-2 (§VII-B SwiGLU case study). 7B's d_ff = 11008
    // (11008/4096 = 2.6875 ≈ 8/3) and 70B's d_ff = 28672 (3.5h). 70B uses
    // grouped-query attention with 8 KV head groups.
    add(llama2("llama2-7b", 4096, 32, 32, 11008));
    add(llama2("llama2-13b", 5120, 40, 40, 13824));
    {
      TransformerConfig c = llama2("llama2-70b", 8192, 64, 80, 28672);
      c.num_kv_heads = 8;
      add(c);
    }

    // --- Encoder-only (BERT) models — the paper's §III-C note that its
    // conclusions extend to encoders, and the §VIII MLPerf-BERT hook.
    // BERT's 30522-entry WordPiece vocabulary violates the %64 rule
    // (MLPerf submissions pad it to 30528 for exactly that reason).
    {
      TransformerConfig c = base("bert-base", 768, 12, 12, 30522, 512);
      c.kind = ModelKind::kEncoder;
      c.microbatch = 32;
      add(c);
    }
    {
      TransformerConfig c = base("bert-large", 1024, 16, 24, 30522, 512);
      c.kind = ModelKind::kEncoder;
      c.microbatch = 32;
      add(c);
    }

    // --- MQA/GQA exemplars beyond Llama.
    {
      // Falcon-7B: multi-query attention (kv = 1) and the famously odd
      // a = 71 — which still satisfies the paper's rule because
      // h/a = 4544/71 = 64 exactly. Head *count* need not be round;
      // head *dimension* must be.
      TransformerConfig c = base("falcon-7b", 4544, 71, 32, 65024);
      c.pos_embedding = PosEmbedding::kRotary;
      c.parallel_layers = true;
      c.tied_embeddings = false;
      c.num_kv_heads = 1;
      add(c);
    }
    {
      // Mistral-7B: GQA with 8 KV heads, d_ff = 3.5h (the Llama-2-70B
      // coefficient at 7B scale). Sliding-window attention is not
      // modelled; s is set to the 8K training context.
      TransformerConfig c = base("mistral-7b", 4096, 32, 32, 32000, 8192);
      c.pos_embedding = PosEmbedding::kRotary;
      c.activation = Activation::kSwiGlu;
      c.mlp_intermediate = 14336;
      c.tied_embeddings = false;
      c.num_kv_heads = 8;
      add(c);
    }
    return m;
  }();
  return reg;
}

}  // namespace

const TransformerConfig& model_by_name(const std::string& name) {
  const auto& reg = registry();
  const auto it = reg.find(to_lower(name));
  if (it == reg.end()) {
    throw LookupError("unknown model '" + name + "'; known: " +
                      join(known_models(), ", "));
  }
  return it->second;
}

std::vector<std::string> known_models() {
  std::vector<std::string> out;
  for (const auto& [name, _] : registry()) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TransformerConfig> pythia_suite() {
  return {
      model_by_name("pythia-70m"),  model_by_name("pythia-160m"),
      model_by_name("pythia-410m"), model_by_name("pythia-1b"),
      model_by_name("pythia-1.4b"), model_by_name("pythia-2.8b"),
      model_by_name("pythia-6.9b"), model_by_name("pythia-12b"),
  };
}

std::vector<TransformerConfig> gpt3_27b_family() {
  std::vector<TransformerConfig> family;
  family.push_back(model_by_name("gpt3-2.7b"));
  family.push_back(model_by_name("gpt3-2.7b-c1"));
  family.push_back(model_by_name("gpt3-2.7b-c2"));
  // Same-h variants across the head-count grid of the paper's appendix
  // (practical head dims only; the full a-grid lives in the head-sweep
  // bench).
  const TransformerConfig& ref = model_by_name("gpt3-2.7b");
  for (const std::int64_t a : {16, 20, 80}) {
    if (2560 % a != 0) continue;
    family.push_back(
        ref.with_heads(a).with_name("gpt3-2.7b-a" + std::to_string(a)));
  }
  return family;
}

}  // namespace codesign::tfm
