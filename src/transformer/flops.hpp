// flops.hpp — FLOP accounting (paper §III-C).
//
// Forward pass of one layer (t = 1, 4h MLP): 24·b·s·h² + 4·b·s²·h
//                                          = 24·b·s·h²·(1 + s/6h)
// The formula is checked against the summed per-GEMM FLOPs of the Table-II
// mapping in tests/test_flops.cpp.
#pragma once

#include "transformer/config.hpp"

namespace codesign::tfm {

/// Paper closed form for one layer's forward GEMM FLOPs (assumes t=1 and
/// the standard 4h MLP; exact for that architecture).
double layer_forward_flops_formula(const TransformerConfig& config);

/// Sum of 2·m·n·k over this layer's actual GEMMs (any variant, any t).
/// FlashAttention configs count the fused kernel's math.
double layer_forward_flops(const TransformerConfig& config);

/// All L layers plus the logit projection.
double model_forward_flops(const TransformerConfig& config);

/// Training step ≈ 3× forward (1 forward + 2 for the backward pass), the
/// standard Megatron accounting the paper builds on.
double model_training_flops(const TransformerConfig& config);

/// Model FLOPs per token processed in the forward pass.
double flops_per_token(const TransformerConfig& config);

}  // namespace codesign::tfm
