// pipeline.hpp — a pipeline-parallel schedule model.
//
// The paper's §VI-B closes with "in all cases it is optimal for the number
// of layers to be divisible by the number of pipeline parallel stages".
// This module quantifies why, with the standard 1F1B/GPipe bubble
// accounting (Narayanan et al.):
//
//   step time = (m + p - 1) · T_slowest_stage
//
// where m is the number of microbatches in flight and p the stage count.
// Two separate inefficiencies fall out:
//   * the bubble fraction (p - 1) / (m + p - 1), independent of shape;
//   * stage imbalance: stages hold ceil(L/p) or floor(L/p) layers, and the
//     slowest stage sets the clock, so when p ∤ L the whole pipeline runs
//     at ceil(L/p)·p/L of its balanced speed — the paper's rule.
//
// Inter-stage point-to-point communication is not modelled (the paper
// explicitly leaves network effects to future work); embedding and logit
// work is assigned to the first/last stages.
#pragma once

#include <cstdint>

#include "gemmsim/simulator.hpp"
#include "transformer/config.hpp"

namespace codesign::tfm {

struct PipelineSchedule {
  std::int64_t stages = 1;        ///< p
  std::int64_t microbatches = 8;  ///< m (gradient-accumulation steps)
};

struct PipelineReport {
  TransformerConfig config;
  PipelineSchedule schedule;

  std::int64_t layers_per_stage_max = 0;  ///< ceil(L / p)
  std::int64_t layers_per_stage_min = 0;  ///< floor(L / p)
  bool balanced = true;                   ///< p | L

  double microbatch_stage_time = 0.0;  ///< fwd+bwd of the slowest stage, 1 µb
  double step_time = 0.0;              ///< (m + p - 1) · slowest stage
  double bubble_fraction = 0.0;        ///< (p - 1) / (m + p - 1)
  /// Slowdown purely from p ∤ L: ceil(L/p)·p / L (1.0 when balanced).
  double imbalance_factor = 1.0;
  /// Useful throughput relative to a zero-bubble, balanced pipeline.
  double efficiency = 1.0;

  double tokens_per_second = 0.0;  ///< m·b·s / step_time
};

/// Evaluate a pipeline schedule for this model on the simulator's GPU.
/// Throws if stages exceed the layer count or either field is < 1.
PipelineReport analyze_pipeline(const TransformerConfig& config,
                                const gemm::GemmSimulator& sim,
                                const PipelineSchedule& schedule);

/// The set of stage counts that divide L (the rule's "good" choices),
/// up to `max_stages`.
std::vector<std::int64_t> balanced_stage_counts(const TransformerConfig& config,
                                                std::int64_t max_stages = 64);

}  // namespace codesign::tfm
