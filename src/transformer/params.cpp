#include "transformer/params.hpp"

#include "common/strings.hpp"

namespace codesign::tfm {

namespace {

std::int64_t product(const std::vector<std::int64_t>& shape) {
  std::int64_t p = 1;
  for (std::int64_t d : shape) p *= d;
  return p;
}

void add(std::vector<WeightInfo>& out, std::string name,
         std::vector<std::int64_t> shape) {
  WeightInfo w;
  w.name = std::move(name);
  w.count = product(shape);
  w.shape = std::move(shape);
  out.push_back(std::move(w));
}

}  // namespace

std::vector<WeightInfo> enumerate_weights(const TransformerConfig& config) {
  config.validate();
  const std::int64_t h = config.hidden_size;
  const std::int64_t v = config.vocab_size;
  const std::int64_t s = config.seq_len;
  const std::int64_t ff = config.d_ff();

  std::vector<WeightInfo> out;
  add(out, "embed.token", {v, h});
  if (config.pos_embedding == PosEmbedding::kLearned) {
    add(out, "embed.position", {s, h});
  }
  // Rotary/ALiBi embeddings have no learned parameters.

  for (std::int64_t l = 0; l < config.num_layers; ++l) {
    const std::string p = "layer" + std::to_string(l) + ".";
    add(out, p + "ln1.gamma", {h});
    add(out, p + "ln1.beta", {h});
    add(out, p + "attn.w_qkv", {h, config.qkv_width()});
    add(out, p + "attn.b_qkv", {config.qkv_width()});
    add(out, p + "attn.w_proj", {h, h});
    add(out, p + "attn.b_proj", {h});
    add(out, p + "ln2.gamma", {h});
    add(out, p + "ln2.beta", {h});
    add(out, p + "mlp.w_up", {h, ff});
    add(out, p + "mlp.b_up", {ff});
    if (config.activation == Activation::kSwiGlu) {
      // The extra learned matrix of §VII-B (gate projections carry no bias
      // in the reference LLaMA implementation).
      add(out, p + "mlp.w_gate", {h, ff});
    }
    add(out, p + "mlp.w_down", {ff, h});
    add(out, p + "mlp.b_down", {h});
  }

  add(out, "final_ln.gamma", {h});
  add(out, "final_ln.beta", {h});
  if (!config.tied_embeddings) {
    add(out, "lm_head", {v, h});
  }
  return out;
}

std::int64_t exact_param_count(const TransformerConfig& config) {
  // Closed form of the enumerate_weights() sum: every layer contributes the
  // same count, so there is no need to materialize ~12 named tensors per
  // layer just to add them up. This is the design-space search's hot path;
  // test_params asserts it matches the enumeration tensor for tensor.
  config.validate();
  const std::int64_t h = config.hidden_size;
  const std::int64_t v = config.vocab_size;
  const std::int64_t s = config.seq_len;
  const std::int64_t ff = config.d_ff();
  const std::int64_t qkv = config.qkv_width();

  std::int64_t per_layer = 0;
  per_layer += 2 * h;            // ln1 gamma + beta
  per_layer += h * qkv + qkv;    // attn w_qkv + b_qkv
  per_layer += h * h + h;        // attn w_proj + b_proj
  per_layer += 2 * h;            // ln2 gamma + beta
  per_layer += h * ff + ff;      // mlp w_up + b_up
  if (config.activation == Activation::kSwiGlu) {
    per_layer += h * ff;         // mlp w_gate (no bias)
  }
  per_layer += ff * h + h;       // mlp w_down + b_down

  std::int64_t total = v * h;    // embed.token
  if (config.pos_embedding == PosEmbedding::kLearned) {
    total += s * h;              // embed.position
  }
  total += config.num_layers * per_layer;
  total += 2 * h;                // final_ln gamma + beta
  if (!config.tied_embeddings) {
    total += v * h;              // lm_head
  }
  return total;
}

double formula_param_count(const TransformerConfig& config) {
  const double h = static_cast<double>(config.hidden_size);
  const double l = static_cast<double>(config.num_layers);
  const double v = static_cast<double>(config.vocab_size);
  const double s = static_cast<double>(config.seq_len);
  return 12.0 * h * h * l + 13.0 * h * l + (v + s) * h;
}

double approx_param_count(const TransformerConfig& config) {
  const double h = static_cast<double>(config.hidden_size);
  const double l = static_cast<double>(config.num_layers);
  return 12.0 * h * h * l;
}

}  // namespace codesign::tfm
