#include "transformer/params.hpp"

#include "common/strings.hpp"

namespace codesign::tfm {

namespace {

std::int64_t product(const std::vector<std::int64_t>& shape) {
  std::int64_t p = 1;
  for (std::int64_t d : shape) p *= d;
  return p;
}

void add(std::vector<WeightInfo>& out, std::string name,
         std::vector<std::int64_t> shape) {
  WeightInfo w;
  w.name = std::move(name);
  w.count = product(shape);
  w.shape = std::move(shape);
  out.push_back(std::move(w));
}

}  // namespace

std::vector<WeightInfo> enumerate_weights(const TransformerConfig& config) {
  config.validate();
  const std::int64_t h = config.hidden_size;
  const std::int64_t v = config.vocab_size;
  const std::int64_t s = config.seq_len;
  const std::int64_t ff = config.d_ff();

  std::vector<WeightInfo> out;
  add(out, "embed.token", {v, h});
  if (config.pos_embedding == PosEmbedding::kLearned) {
    add(out, "embed.position", {s, h});
  }
  // Rotary/ALiBi embeddings have no learned parameters.

  for (std::int64_t l = 0; l < config.num_layers; ++l) {
    const std::string p = "layer" + std::to_string(l) + ".";
    add(out, p + "ln1.gamma", {h});
    add(out, p + "ln1.beta", {h});
    add(out, p + "attn.w_qkv", {h, config.qkv_width()});
    add(out, p + "attn.b_qkv", {config.qkv_width()});
    add(out, p + "attn.w_proj", {h, h});
    add(out, p + "attn.b_proj", {h});
    add(out, p + "ln2.gamma", {h});
    add(out, p + "ln2.beta", {h});
    add(out, p + "mlp.w_up", {h, ff});
    add(out, p + "mlp.b_up", {ff});
    if (config.activation == Activation::kSwiGlu) {
      // The extra learned matrix of §VII-B (gate projections carry no bias
      // in the reference LLaMA implementation).
      add(out, p + "mlp.w_gate", {h, ff});
    }
    add(out, p + "mlp.w_down", {ff, h});
    add(out, p + "mlp.b_down", {h});
  }

  add(out, "final_ln.gamma", {h});
  add(out, "final_ln.beta", {h});
  if (!config.tied_embeddings) {
    add(out, "lm_head", {v, h});
  }
  return out;
}

std::int64_t exact_param_count(const TransformerConfig& config) {
  std::int64_t total = 0;
  for (const WeightInfo& w : enumerate_weights(config)) total += w.count;
  return total;
}

double formula_param_count(const TransformerConfig& config) {
  const double h = static_cast<double>(config.hidden_size);
  const double l = static_cast<double>(config.num_layers);
  const double v = static_cast<double>(config.vocab_size);
  const double s = static_cast<double>(config.seq_len);
  return 12.0 * h * h * l + 13.0 * h * l + (v + s) * h;
}

double approx_param_count(const TransformerConfig& config) {
  const double h = static_cast<double>(config.hidden_size);
  const double l = static_cast<double>(config.num_layers);
  return 12.0 * h * h * l;
}

}  // namespace codesign::tfm
