// attribution.hpp — bottleneck attribution rollups for layers and models.
//
// The GEMM simulator explains one estimate (gemm::BoundBreakdown); this
// header rolls those per-estimate explanations up to the quantities an
// architect actually reasons about:
//   * which GEMM families dominate a layer / a model (Fig 11, but with the
//     *mechanism* attached to each family, not just the share),
//   * the attention-vs-MLP-vs-other split of layer time,
//   * a per-layer histogram of limiting bounds (how many ops, and how much
//     time, sit on each roof),
//   * a time-weighted BoundBreakdown of the whole layer / forward pass.
//
// Everything here is derived from the same estimates analyze_layer() /
// analyze_model() use, walked in the same execution order, so the time
// totals are bit-identical to those reports and the rollups are
// byte-reproducible across thread counts and cache states.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "gemmsim/kernel_model.hpp"
#include "gemmsim/simulator.hpp"
#include "transformer/config.hpp"
#include "transformer/gemm_mapping.hpp"

namespace codesign::tfm {

/// Attribution of one GEMM family (one Table-II row, or the fused
/// FlashAttention op) within a layer or a whole forward pass.
struct FamilyAttribution {
  LayerOp op = LayerOp::kQkvTransform;
  std::string name;     ///< op_name(op)
  std::uint64_t count = 0;  ///< instances (1 per layer; L or 1 per model)
  double time = 0.0;    ///< seconds (summed over instances)
  double share = 0.0;   ///< time / total GEMM time of the rollup
  gemm::Bound bound = gemm::Bound::kCompute;  ///< the estimate's roof
  gemm::BoundBreakdown breakdown;             ///< per-estimate attribution
  std::string detail;   ///< GEMM size + selected tile (empty for flash)
};

/// Ops and time per limiting mechanism, indexed by
/// static_cast<int>(gemm::Bound): {kCompute, kMemory, kLaunch}.
struct BoundHistogram {
  std::array<std::uint64_t, 3> count{};
  std::array<double, 3> time{};
};

/// Which branch of the layer an op belongs to for the split rollup.
enum class LayerBranch { kAttention, kMlp, kOther };
LayerBranch op_branch(LayerOp op);

/// Full attribution of one transformer layer.
struct LayerAttribution {
  TransformerConfig config;
  std::vector<FamilyAttribution> gemms;  ///< execution order, incl. flash

  double gemm_time = 0.0;
  double non_gemm_time = 0.0;
  double total_time = 0.0;  ///< == analyze_layer().total_time bit-for-bit

  /// The attention / MLP / other split of *total* layer time. Attention
  /// takes QKV, score, AOV, flash, projection, softmax, rotary; MLP takes
  /// up/gate/down and the activation; other is LayerNorms + residuals.
  double attention_time = 0.0;
  double mlp_time = 0.0;
  double other_time = 0.0;

  gemm::BoundBreakdown breakdown;  ///< time-weighted over every layer op
  BoundHistogram histogram;        ///< per-op limiting bounds
};

LayerAttribution attribute_layer(const TransformerConfig& config,
                                 const gemm::GemmSimulator& sim);

/// Whole-forward-pass attribution: L identical layers plus the model-level
/// ops (embedding lookup, final LayerNorm, logit projection).
struct ModelAttribution {
  TransformerConfig config;
  LayerAttribution layer;  ///< one representative layer

  /// Model-level family rollup: each layer family scaled by L, plus the
  /// logit projection — "which GEMM families dominate the model".
  std::vector<FamilyAttribution> gemms;

  double embedding_time = 0.0;
  double final_ln_time = 0.0;
  double logit_time = 0.0;
  double total_time = 0.0;  ///< == analyze_model().total_time bit-for-bit

  gemm::BoundBreakdown breakdown;  ///< time-weighted over the forward pass
  BoundHistogram histogram;        ///< L× the layer ops + model-level ops
};

ModelAttribution attribute_model(const TransformerConfig& config,
                                 const gemm::GemmSimulator& sim);

/// Attribution of one scheduled op (exposed for tests): dispatches to
/// gemm::bound_breakdown for GEMMs, derives launch/compute/memory splits
/// for flash and elementwise ops from the same bandwidth model
/// op_latency() uses. Returns the op's time through `time_out`.
gemm::BoundBreakdown op_breakdown(const MappedOp& op,
                                  const gemm::GemmSimulator& sim,
                                  double* time_out);

}  // namespace codesign::tfm
