// forward.hpp — an executable CPU forward pass.
//
// This is the substrate that validates the analytic mapping: the model
// actually runs (embedding → L× [LN, QKV, attention BMMs, projection, LN,
// MLP] → final LN → logits) on the kernels library, and its tensor shapes
// are asserted against the Table-II GEMM decomposition in the integration
// tests. Single GPU (t = 1), batch folded into the sequence dimension,
// inference-mode (no dropout).
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/tensor.hpp"
#include "transformer/config.hpp"

namespace codesign::tfm {

using kern::Tensor;

/// Weights of one transformer layer (linear-layer convention: W is
/// (out_features, in_features) as in torch.nn.functional.linear).
struct LayerWeights {
  Tensor ln1_gamma, ln1_beta;
  Tensor w_qkv, b_qkv;      ///< (3h, h), (3h)
  Tensor w_proj, b_proj;    ///< (h, h), (h)
  Tensor ln2_gamma, ln2_beta;
  Tensor w_up, b_up;        ///< (d_ff, h), (d_ff)
  Tensor w_gate;            ///< (d_ff, h), SwiGLU only (no bias)
  Tensor w_down, b_down;    ///< (h, d_ff), (h)
};

struct ModelWeights {
  Tensor token_embedding;  ///< (v, h)
  Tensor pos_embedding;    ///< (s, h) when learned, empty otherwise
  std::vector<LayerWeights> layers;
  Tensor final_ln_gamma, final_ln_beta;
  Tensor lm_head;          ///< (v, h) when untied, empty when weight-tied
};

class TransformerModel {
 public:
  /// Build a model with N(0, 0.02²) weights from a deterministic seed.
  static TransformerModel random_init(const TransformerConfig& config,
                                      std::uint64_t seed = 1234);

  const TransformerConfig& config() const { return config_; }
  const ModelWeights& weights() const { return weights_; }

  /// Full forward pass over one sequence of token ids (length <= s).
  /// Returns logits of shape (len, v).
  Tensor forward(const std::vector<std::int64_t>& token_ids) const;

  /// Sub-blocks exposed for the mapping integration tests. `x` is the
  /// (len, h) activation; both return (len, h).
  Tensor attention_block(const Tensor& x, const LayerWeights& w) const;
  Tensor mlp_block(const Tensor& x, const LayerWeights& w) const;

  /// Mean cross-entropy of forward(ids) against next-token targets —
  /// ≈ ln(v) for a random model, which the integration test asserts.
  double next_token_loss(const std::vector<std::int64_t>& token_ids) const;

 private:
  TransformerConfig config_;
  ModelWeights weights_;
};

}  // namespace codesign::tfm
