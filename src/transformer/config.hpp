// config.hpp — the transformer architecture hyperparameters (paper Table I).
//
//   a : number of attention heads        s : sequence length
//   b : microbatch size                  t : tensor-parallel size
//   h : hidden dimension size            v : vocabulary size
//   L : number of transformer layers
//
// plus the architectural variants of paper §VI-C: parallel layers,
// positional-embedding flavour, SwiGLU (with its (8/3)h MLP width), and the
// attention implementation (unfused BMMs vs FlashAttention).
//
// Per the paper's convention, all sizes are *per GPU*: with t-way tensor
// parallelism the mapping divides the relevant dimensions by t.
#pragma once

#include <cstdint>
#include <string>

#include "gpuarch/dtype.hpp"

namespace codesign::tfm {

using gpu::DType;

enum class Activation { kGelu, kSwiGlu };
enum class PosEmbedding { kLearned, kRotary, kAlibi };
enum class AttentionImpl { kBmm, kFlash };
/// Decoder-only (GPT-style, causal) or encoder-only (BERT-style,
/// bidirectional). The paper's analysis covers both (§III-C): the GEMM
/// shapes are identical; only the attention mask differs.
enum class ModelKind { kDecoder, kEncoder };

const char* activation_name(Activation a);
const char* pos_embedding_name(PosEmbedding p);
const char* attention_impl_name(AttentionImpl a);
const char* model_kind_name(ModelKind k);

struct TransformerConfig {
  std::string name = "unnamed";

  std::int64_t hidden_size = 0;      ///< h
  std::int64_t num_heads = 0;        ///< a
  /// Grouped-query attention: number of key/value head groups (0 = full
  /// multi-head, i.e. a KV groups). Shrinks the K/V slices of the QKV
  /// transform and the KV cache; the score/AOV math is unchanged because
  /// every query head still attends (K/V are broadcast within a group).
  std::int64_t num_kv_heads = 0;
  std::int64_t num_layers = 0;       ///< L
  std::int64_t seq_len = 2048;       ///< s
  std::int64_t microbatch = 4;       ///< b
  std::int64_t vocab_size = 50304;   ///< v
  std::int64_t tensor_parallel = 1;  ///< t

  Activation activation = Activation::kGelu;
  PosEmbedding pos_embedding = PosEmbedding::kLearned;
  AttentionImpl attention = AttentionImpl::kBmm;
  ModelKind kind = ModelKind::kDecoder;
  /// Parallel attention+MLP formulation (paper §VI-C1):
  /// y = x + MLP(Norm(x)) + Attn(Norm(x)). Same GEMMs, fewer kernel
  /// launches because the two branches fuse.
  bool parallel_layers = false;

  /// MLP intermediate size d_ff. 0 resolves to the default: 4h for GELU,
  /// round(8h/3) for SwiGLU (paper §VII-B) — resolved by d_ff().
  std::int64_t mlp_intermediate = 0;

  /// GPT-2/GPT-3 tie the logit projection to the token embedding; the
  /// GPT-NeoX family (Pythia) and Llama keep a separate LM head. Affects
  /// parameter counts only — the logit GEMM shape is identical.
  bool tied_embeddings = true;

  DType dtype = DType::kFP16;

  // --- derived quantities -------------------------------------------------
  std::int64_t head_dim() const;       ///< h / a — the paper's pivotal h/a
  std::int64_t kv_heads() const;       ///< resolved KV head count (a if MHA)
  /// Width of the fused QKV output: h + 2·kv_heads·head_dim (== 3h for MHA).
  std::int64_t qkv_width() const;
  std::int64_t d_ff() const;           ///< resolved MLP intermediate size
  std::int64_t heads_per_tp() const;   ///< a / t
  std::int64_t hidden_per_tp() const;  ///< h / t
  std::int64_t tokens() const { return microbatch * seq_len; }  ///< b·s
  /// Number of MLP weight matrices (2 for GELU, 3 for SwiGLU).
  int mlp_matrices() const {
    return activation == Activation::kSwiGlu ? 3 : 2;
  }

  // --- fluent copies for sweeps --------------------------------------------
  TransformerConfig with_heads(std::int64_t a) const;
  TransformerConfig with_hidden(std::int64_t h) const;
  TransformerConfig with_layers(std::int64_t l) const;
  TransformerConfig with_microbatch(std::int64_t b) const;
  TransformerConfig with_seq_len(std::int64_t s) const;
  TransformerConfig with_vocab(std::int64_t v) const;
  TransformerConfig with_tensor_parallel(std::int64_t t) const;
  TransformerConfig with_name(std::string n) const;

  /// Structural validation (throws ConfigError):
  ///   h, a, L, s, b, v > 0;  a | h  (integral head dim);
  ///   t >= 1;  t | a and t | h and t | d_ff  (tensor-parallel split);
  ///   t | v (vocab-parallel logits).
  void validate() const;

  /// Human-readable one-liner, e.g. "gpt3-2.7b (h=2560 a=32 L=32 ...)".
  std::string to_string() const;

  bool operator==(const TransformerConfig&) const = default;
};

}  // namespace codesign::tfm
