// model_zoo.hpp — the published model architectures used by the paper.
//
// Includes the GPT-3 family (Brown et al.), the shape variants the paper
// defines for Fig 1 (C1: h=2560 a=64; C2: h=2560 a=40), the Pythia suite
// (Fig 13), the GPT-3-2.7B-clones (GPT-Neo, OPT, RedPajama-INCITE), and
// the Llama-2 SwiGLU models of the §VII-B case study.
//
// Every entry records the *architecture*; workload knobs (b, s overrides,
// tensor parallel, attention impl) are adjusted per experiment via the
// with_*() fluent copies.
#pragma once

#include <string>
#include <vector>

#include "transformer/config.hpp"

namespace codesign::tfm {

/// Look up a model by name (case-insensitive): "gpt3-2.7b", "gpt3-2.7b-c1",
/// "gpt3-2.7b-c2", "pythia-410m", "llama2-7b", ... Throws LookupError.
const TransformerConfig& model_by_name(const std::string& name);

/// All registry names, sorted.
std::vector<std::string> known_models();

/// The Pythia suite in parameter order (70m … 12b) — the Fig-13 x-axis.
std::vector<TransformerConfig> pythia_suite();

/// The GPT-3 2.7B shape family benchmarked in Fig 1: the default (a=32,
/// h/a=80), the paper's C1 (a=64, h/a=40) and C2 (a=40, h/a=64), plus the
/// further same-parameter-count variants swept by the bench.
std::vector<TransformerConfig> gpt3_27b_family();

}  // namespace codesign::tfm
