// trace.hpp — chrome-trace export of the simulated execution timeline.
//
// Serializes one layer's (or one model's) operator schedule as a Chrome
// Trace Event JSON document (load via chrome://tracing or Perfetto), with
// GEMMs and non-GEMM kernels on separate tracks. This is the "show me
// where the time goes" artifact for a proposed shape, built from the same
// latency model as the figures.
#pragma once

#include <string>

#include "gemmsim/simulator.hpp"
#include "transformer/config.hpp"

namespace codesign::tfm {

struct TraceOptions {
  /// Emit this many consecutive layers (timeline repeats).
  std::int64_t layers = 1;
  /// Include the model-level ops (embedding, final LN, logits) around the
  /// layer stack.
  bool include_model_level = false;
};

/// Chrome Trace Event JSON ({"traceEvents": [...]}) of the simulated
/// schedule. Timestamps/durations are microseconds, one "complete" (ph=X)
/// event per operator; GEMMs on tid 1, non-GEMM kernels on tid 2.
std::string trace_json(const TransformerConfig& config,
                       const gemm::GemmSimulator& sim,
                       const TraceOptions& options = {});

}  // namespace codesign::tfm
