#include "transformer/attribution.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "transformer/layer_model.hpp"

namespace codesign::tfm {

namespace {

/// Accumulate `b` into `acc` weighted by the op's absolute time. The
/// accumulator holds weighted *seconds* until normalize() divides it back
/// to fractions.
void weighted_add(gemm::BoundBreakdown& acc, const gemm::BoundBreakdown& b,
                  double time) {
  acc.compute += b.compute * time;
  acc.memory += b.memory * time;
  acc.launch += b.launch * time;
  acc.tile_waste += b.tile_waste * time;
  acc.wave_tail += b.wave_tail * time;
}

void normalize(gemm::BoundBreakdown& acc, double total) {
  if (!(total > 0.0)) return;
  acc.compute /= total;
  acc.memory /= total;
  acc.launch /= total;
  acc.tile_waste /= total;
  acc.wave_tail /= total;
}

/// The rollup's headline mechanism: the bound holding the most time.
/// Ties resolve to the lower enum value — deterministic.
gemm::Bound dominant_bound(const BoundHistogram& h) {
  int best = 0;
  for (int i = 1; i < 3; ++i) {
    if (h.time[i] > h.time[best]) best = i;
  }
  return static_cast<gemm::Bound>(best);
}

std::string gemm_detail(const gemm::KernelEstimate& est) {
  return str_format("%s tile=%s bound=%s waves=%lld",
                    est.problem.to_string().c_str(), est.tile.name().c_str(),
                    gemm::bound_name(est.bound),
                    static_cast<long long>(est.wave_q.waves));
}

}  // namespace

LayerBranch op_branch(LayerOp op) {
  switch (op) {
    case LayerOp::kQkvTransform:
    case LayerOp::kAttentionScore:
    case LayerOp::kAttentionOverValue:
    case LayerOp::kPostAttnProjection:
    case LayerOp::kFlashAttention:
    case LayerOp::kSoftmax:
    case LayerOp::kRotaryEmbedding:
      return LayerBranch::kAttention;
    case LayerOp::kMlpUp:
    case LayerOp::kMlpGate:
    case LayerOp::kMlpDown:
    case LayerOp::kActivation:
      return LayerBranch::kMlp;
    default:
      return LayerBranch::kOther;
  }
}

gemm::BoundBreakdown op_breakdown(const MappedOp& op,
                                  const gemm::GemmSimulator& sim,
                                  double* time_out) {
  if (op.gemm.has_value()) {
    const gemm::KernelEstimate est = sim.estimate(*op.gemm);
    if (time_out != nullptr) *time_out = est.time;
    return gemm::bound_breakdown(est);
  }
  gemm::BoundBreakdown b;
  if (op.flash.has_value()) {
    // The fused kernel has no tile/wave terms in the model; its time splits
    // into the limiting roof's body plus the launch floor.
    const gemm::FlashAttentionEstimate est = sim.estimate_flash(*op.flash);
    b.bound = est.bound;
    if (est.time > 0.0) {
      const double body = std::max(est.compute_time, est.memory_time);
      b.launch = (est.time - body) / est.time;
      if (est.compute_time >= est.memory_time) {
        b.compute = body / est.time;
      } else {
        b.memory = body / est.time;
      }
    }
    if (time_out != nullptr) *time_out = est.time;
    return b;
  }
  // Elementwise/reduction kernel: DRAM traffic plus the launch floor — the
  // exact expression op_latency()/layer_total_time() use.
  const double launch = sim.gpu().kernel_launch_overhead;
  const double traffic =
      op.elementwise_bytes / sim.gpu().achievable_bandwidth();
  const double time = traffic + launch;
  b.bound = launch > traffic ? gemm::Bound::kLaunch : gemm::Bound::kMemory;
  if (time > 0.0) {
    b.memory = traffic / time;
    b.launch = launch / time;
  }
  if (time_out != nullptr) *time_out = time;
  return b;
}

LayerAttribution attribute_layer(const TransformerConfig& config,
                                 const gemm::GemmSimulator& sim) {
  config.validate();
  LayerAttribution r;
  r.config = config;
  gemm::BoundBreakdown acc;
  for (const MappedOp& op : layer_schedule(config)) {
    double t = 0.0;
    gemm::BoundBreakdown b;
    FamilyAttribution f;
    bool is_family = false;
    if (op.gemm.has_value()) {
      const gemm::KernelEstimate est = sim.estimate(*op.gemm);
      t = est.time;
      b = gemm::bound_breakdown(est);
      f.detail = gemm_detail(est);
      is_family = true;
    } else {
      b = op_breakdown(op, sim, &t);
      if (op.flash.has_value()) {
        f.detail = str_format("flash(s=%lld d=%lld) bound=%s",
                              static_cast<long long>(op.flash->seq),
                              static_cast<long long>(op.flash->head_dim),
                              gemm::bound_name(b.bound));
        is_family = true;
      }
    }
    r.total_time += t;
    const int bi = static_cast<int>(b.bound);
    r.histogram.count[static_cast<std::size_t>(bi)] += 1;
    r.histogram.time[static_cast<std::size_t>(bi)] += t;
    switch (op_branch(op.op)) {
      case LayerBranch::kAttention: r.attention_time += t; break;
      case LayerBranch::kMlp: r.mlp_time += t; break;
      case LayerBranch::kOther: r.other_time += t; break;
    }
    weighted_add(acc, b, t);
    if (is_family) {
      r.gemm_time += t;
      f.op = op.op;
      f.name = op_name(op.op);
      f.count = 1;
      f.time = t;
      f.bound = b.bound;
      f.breakdown = b;
      r.gemms.push_back(std::move(f));
    } else {
      r.non_gemm_time += t;
    }
  }
  for (FamilyAttribution& f : r.gemms) {
    f.share = r.gemm_time > 0.0 ? f.time / r.gemm_time : 0.0;
  }
  normalize(acc, r.total_time);
  acc.bound = dominant_bound(r.histogram);
  r.breakdown = acc;
  return r;
}

ModelAttribution attribute_model(const TransformerConfig& config,
                                 const gemm::GemmSimulator& sim) {
  ModelAttribution r;
  r.config = config;
  r.layer = attribute_layer(config, sim);
  const double layers = static_cast<double>(config.num_layers);

  for (const FamilyAttribution& f : r.layer.gemms) {
    FamilyAttribution g = f;
    g.count = static_cast<std::uint64_t>(config.num_layers);
    g.time = f.time * layers;
    r.gemms.push_back(std::move(g));
  }
  for (std::size_t i = 0; i < 3; ++i) {
    r.histogram.count[i] =
        r.layer.histogram.count[i] *
        static_cast<std::uint64_t>(config.num_layers);
    r.histogram.time[i] = r.layer.histogram.time[i] * layers;
  }
  gemm::BoundBreakdown acc;
  weighted_add(acc, r.layer.breakdown, layers * r.layer.total_time);

  for (const MappedOp& op : model_level_ops(config)) {
    double t = 0.0;
    gemm::BoundBreakdown b;
    if (op.gemm.has_value()) {
      const gemm::KernelEstimate est = sim.estimate(*op.gemm);
      t = est.time;
      b = gemm::bound_breakdown(est);
      FamilyAttribution f;
      f.op = op.op;
      f.name = op_name(op.op);
      f.count = 1;
      f.time = t;
      f.bound = b.bound;
      f.breakdown = b;
      f.detail = gemm_detail(est);
      r.gemms.push_back(std::move(f));
    } else {
      b = op_breakdown(op, sim, &t);
    }
    switch (op.op) {
      case LayerOp::kEmbeddingLookup: r.embedding_time = t; break;
      case LayerOp::kFinalLayerNorm: r.final_ln_time = t; break;
      case LayerOp::kLogitProjection: r.logit_time = t; break;
      default: break;
    }
    const auto bi = static_cast<std::size_t>(static_cast<int>(b.bound));
    r.histogram.count[bi] += 1;
    r.histogram.time[bi] += t;
    weighted_add(acc, b, t);
  }

  // Same expression analyze_model() uses, so the totals stay bit-identical.
  r.total_time = static_cast<double>(config.num_layers) * r.layer.total_time +
                 r.embedding_time + r.final_ln_time + r.logit_time;
  const double model_gemm_time =
      layers * r.layer.gemm_time + r.logit_time;
  for (FamilyAttribution& f : r.gemms) {
    f.share = model_gemm_time > 0.0 ? f.time / model_gemm_time : 0.0;
  }
  normalize(acc, r.total_time);
  acc.bound = dominant_bound(r.histogram);
  r.breakdown = acc;
  return r;
}

}  // namespace codesign::tfm
