// inference.hpp — autoregressive inference latency model (paper §VII-C).
//
// Models a DeepSpeed-MII-style serving stack:
//   * prefill — one forward pass over the prompt; GEMM-dominated, reuses
//     the layer latency model with b = batch, s = prompt length.
//   * decode  — one token per step; each step must stream every weight
//     matrix and the growing KV cache through HBM, so it is memory-bound,
//     with per-kernel launch overhead that penalizes deep, narrow models.
//
// This reproduces Fig 13's structure: latency grows with parameter count
// along a power-law trend, and models whose shape is inefficient for their
// size (Pythia-410M: 24 thin layers of h=1024) sit above the trend while
// well-shaped ones (Pythia-1B: 16 layers of h=2048, fewer heads) sit below
// — the paper's "train-efficient implies infer-efficient" argument.
#pragma once

#include "gemmsim/simulator.hpp"
#include "transformer/config.hpp"

namespace codesign::tfm {

struct InferenceWorkload {
  std::int64_t prompt_len = 128;
  std::int64_t generate_tokens = 128;
  std::int64_t batch = 1;
};

struct InferenceEstimate {
  TransformerConfig config;
  InferenceWorkload workload;

  double weight_bytes = 0.0;       ///< streamed per decode step
  double kv_bytes_avg = 0.0;       ///< average KV-cache traffic per step
  double launches_per_step = 0.0;  ///< kernel launches per decode step

  double prefill_time = 0.0;       ///< seconds
  double per_token_time = 0.0;     ///< seconds per generated token
  double decode_time = 0.0;        ///< per_token_time * generate_tokens
  double total_time = 0.0;         ///< prefill + decode
  double tokens_per_second = 0.0;  ///< steady-state decode rate
};

/// Kernel launches per decode step for this architecture: the per-layer
/// GEMM count plus the non-GEMM kernels, reduced when parallel layers fuse
/// branches.
double decode_launches_per_step(const TransformerConfig& config);

InferenceEstimate estimate_inference(const TransformerConfig& config,
                                     const gemm::GemmSimulator& sim,
                                     const InferenceWorkload& workload = {});

/// Encoder (BERT-style) serving: one bidirectional forward pass per batch
/// of sequences — no autoregressive loop, so the whole request is a
/// prefill (this is the MLPerf-BERT measurement shape of §VIII).
struct EncoderServingEstimate {
  TransformerConfig config;
  std::int64_t batch = 0;
  double batch_latency = 0.0;        ///< seconds for one batched forward
  double sequences_per_second = 0.0;
  double tokens_per_second = 0.0;
};

/// Throws unless config.kind == kEncoder.
EncoderServingEstimate estimate_encoder_serving(
    const TransformerConfig& config, const gemm::GemmSimulator& sim,
    std::int64_t batch = 32);

}  // namespace codesign::tfm
