#include "transformer/flops.hpp"

#include "transformer/gemm_mapping.hpp"

namespace codesign::tfm {

double layer_forward_flops_formula(const TransformerConfig& c) {
  const double b = static_cast<double>(c.microbatch);
  const double s = static_cast<double>(c.seq_len);
  const double h = static_cast<double>(c.hidden_size);
  return 24.0 * b * s * h * h + 4.0 * b * s * s * h;
}

double layer_forward_flops(const TransformerConfig& c) {
  double total = 0.0;
  for (const gemm::GemmProblem& p : layer_gemms(c)) total += p.flops();
  if (c.attention == AttentionImpl::kFlash) {
    // The fused kernel's useful math is the two matmuls it absorbs. Count
    // the dense (non-causal) math to stay comparable with the BMM path,
    // which also computes the full score matrix.
    gemm::FlashAttentionProblem fp = flash_attention_problem(c);
    fp.causal = false;
    total += fp.flops();
  }
  return total;
}

double model_forward_flops(const TransformerConfig& c) {
  return static_cast<double>(c.num_layers) * layer_forward_flops(c) +
         logit_gemm(c).flops();
}

double model_training_flops(const TransformerConfig& c) {
  return 3.0 * model_forward_flops(c);
}

double flops_per_token(const TransformerConfig& c) {
  return model_forward_flops(c) / static_cast<double>(c.tokens());
}

}  // namespace codesign::tfm
