#include "transformer/pipeline.hpp"

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/training.hpp"

namespace codesign::tfm {

PipelineReport analyze_pipeline(const TransformerConfig& config,
                                const gemm::GemmSimulator& sim,
                                const PipelineSchedule& schedule) {
  config.validate();
  CODESIGN_CHECK(schedule.stages >= 1, "stages must be >= 1");
  CODESIGN_CHECK(schedule.microbatches >= 1, "microbatches must be >= 1");
  CODESIGN_CHECK(schedule.stages <= config.num_layers,
                 "more pipeline stages than layers");

  PipelineReport r;
  r.config = config;
  r.schedule = schedule;

  const std::int64_t p = schedule.stages;
  const std::int64_t m = schedule.microbatches;
  const std::int64_t l = config.num_layers;
  r.layers_per_stage_max = ceil_div(l, p);
  r.layers_per_stage_min = l / p;
  r.balanced = (l % p == 0);

  // Per-microbatch, per-layer forward + backward time.
  const double layer_fwd = analyze_layer(config, sim).total_time;
  const double layer_bwd = layer_backward_time(config, sim);
  const double per_layer = layer_fwd + layer_bwd;

  r.microbatch_stage_time =
      static_cast<double>(r.layers_per_stage_max) * per_layer;
  r.step_time = static_cast<double>(m + p - 1) * r.microbatch_stage_time;

  r.bubble_fraction =
      static_cast<double>(p - 1) / static_cast<double>(m + p - 1);
  r.imbalance_factor = static_cast<double>(r.layers_per_stage_max) *
                       static_cast<double>(p) / static_cast<double>(l);

  // Ideal: m microbatches through L layers with no bubble, no imbalance.
  const double ideal = static_cast<double>(m) * static_cast<double>(l) *
                       per_layer / static_cast<double>(p);
  r.efficiency = ideal / r.step_time;

  r.tokens_per_second = static_cast<double>(m) *
                        static_cast<double>(config.tokens()) / r.step_time;
  return r;
}

std::vector<std::int64_t> balanced_stage_counts(const TransformerConfig& config,
                                                std::int64_t max_stages) {
  config.validate();
  CODESIGN_CHECK(max_stages >= 1, "max_stages must be >= 1");
  std::vector<std::int64_t> out;
  for (std::int64_t p = 1; p <= max_stages && p <= config.num_layers; ++p) {
    if (config.num_layers % p == 0) out.push_back(p);
  }
  return out;
}

}  // namespace codesign::tfm
