// explain.hpp — decompose a GEMM's inefficiency into the paper's factors.
//
// The paper's contribution is pedagogical: it traces "this GEMM is slow"
// to first principles. This module does that per kernel: starting from
// the device's datasheet peak, it multiplies out every modelled loss
//   peak → achievable   (best-kernel fraction)
//        → tile         (intrinsic efficiency of the selected tile)
//        → alignment    (tensor-core ladder of §III-B)
//        → tile quant   (padded vs useful volume, §III-B)
//        → wave quant   (partial waves, §III-B)
//        → roofline     (memory- or launch-bound gap)
// so that peak · Πfactors == observed throughput, exactly. The factors are
// what the advisor and the `codesign explain` CLI print.
#pragma once

#include <string>
#include <vector>

#include "gemmsim/kernel_model.hpp"

namespace codesign::gemm {

struct EfficiencyFactor {
  std::string name;        ///< e.g. "alignment"
  double factor = 1.0;     ///< multiplicative, in (0, 1]
  std::string detail;      ///< human-readable cause with the numbers
};

struct EfficiencyBreakdown {
  KernelEstimate estimate;
  double peak_tflops = 0.0;      ///< datasheet tensor peak for the dtype
  double observed_tflops = 0.0;  ///< useful-work throughput
  std::vector<EfficiencyFactor> factors;

  /// Product of all factors — equals observed/peak up to rounding.
  double total_factor() const;

  /// Multi-line human-readable report.
  std::string to_string() const;
};

/// Explain the selected kernel for `problem` on `gpu`.
EfficiencyBreakdown explain_gemm(const GemmProblem& problem,
                                 const gpu::GpuSpec& gpu);

}  // namespace codesign::gemm
