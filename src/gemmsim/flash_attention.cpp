#include "gemmsim/flash_attention.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "gpuarch/tensor_core.hpp"

namespace codesign::gemm {

void FlashAttentionProblem::validate() const {
  if (batch <= 0 || heads <= 0 || seq <= 0 || head_dim <= 0) {
    throw ShapeError("FlashAttention dimensions must be positive");
  }
}

double FlashAttentionProblem::flops() const {
  const double b = static_cast<double>(batch);
  const double a = static_cast<double>(heads);
  const double s = static_cast<double>(seq);
  const double d = static_cast<double>(head_dim);
  const double dense = 4.0 * b * a * s * s * d;  // QKᵀ and PV, 2 FLOPs/MAC
  return causal ? dense / 2.0 : dense;
}

double FlashAttentionProblem::bytes() const {
  const double e = static_cast<double>(gpu::dtype_size(dtype));
  const double b = static_cast<double>(batch);
  const double a = static_cast<double>(heads);
  const double s = static_cast<double>(seq);
  const double d = static_cast<double>(head_dim);
  const double qkvo = 4.0 * b * a * s * d * e;       // Q, K, V in; O out
  const double stats = 2.0 * b * a * s * 4.0;        // fp32 row max + sumexp
  return qkvo + stats;
}

double FlashAttentionEstimate::flops_per_second() const {
  return time > 0.0 ? problem.flops() / time : 0.0;
}

FlashAttentionEstimate estimate_flash_attention(
    const FlashAttentionProblem& problem, const gpu::GpuSpec& gpu) {
  problem.validate();
  FlashAttentionEstimate e;
  e.problem = problem;

  // The fused kernel's inner MMA shapes are governed by the head dimension;
  // seq-length tiles are chosen by the kernel itself and stay aligned.
  const double d_eff =
      gpu::dim_alignment_efficiency(problem.head_dim, problem.dtype, gpu);
  const double math_rate = gpu.achievable_tensor_flops(problem.dtype) *
                           kFlashAttention2Efficiency * d_eff;
  CODESIGN_CHECK(math_rate > 0.0,
                 "FlashAttention needs a tensor-core path for this dtype");
  e.compute_time = problem.flops() / math_rate;
  e.memory_time = problem.bytes() / gpu.achievable_bandwidth();
  const double body = std::max(e.compute_time, e.memory_time);
  e.time = body + gpu.kernel_launch_overhead;
  if (gpu.kernel_launch_overhead > body) {
    e.bound = Bound::kLaunch;
  } else {
    e.bound = e.compute_time >= e.memory_time ? Bound::kCompute : Bound::kMemory;
  }
  return e;
}

}  // namespace codesign::gemm
