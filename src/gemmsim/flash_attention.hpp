// flash_attention.hpp — performance model of FlashAttention-2 (paper §VI-C3).
//
// FlashAttention fuses score computation, softmax, and attention-over-value
// into one kernel that never materializes the s×s score matrix in DRAM, so
// its IO cost is O(b·s·h) instead of O(b·a·s²). The result is a clean
// roofline in the hidden size (Fig 12): throughput rises with h and
// saturates at the kernel's math efficiency — which is why the paper's
// attention-shape takeaways simplify to "make h large" once FlashAttention
// is in use, while the MLP takeaways are unchanged.
#pragma once

#include <cstdint>

#include "gemmsim/roofline.hpp"
#include "gpuarch/gpu_spec.hpp"

namespace codesign::gemm {

struct FlashAttentionProblem {
  std::int64_t batch = 1;     ///< microbatch b
  std::int64_t heads = 1;     ///< attention heads a (per GPU)
  std::int64_t seq = 1;       ///< sequence length s
  std::int64_t head_dim = 1;  ///< h / a
  bool causal = false;        ///< causal mask halves the useful math
  DType dtype = DType::kFP16;

  /// Useful math: 4·b·s²·a·d MACs→FLOPs for the two fused matmuls
  /// (halved under a causal mask).
  double flops() const;

  /// DRAM traffic: Q, K, V read once, O written once (the point of the
  /// algorithm), plus the softmax statistics.
  double bytes() const;

  double arithmetic_intensity() const { return flops() / bytes(); }

  void validate() const;
};

struct FlashAttentionEstimate {
  FlashAttentionProblem problem;
  double compute_time = 0.0;
  double memory_time = 0.0;
  double time = 0.0;  ///< max(compute, memory) + launch overhead
  Bound bound = Bound::kCompute;

  double flops_per_second() const;
  double tflops() const { return flops_per_second() / 1e12; }
};

/// Fraction of the device's achievable tensor rate the fused kernel reaches
/// with a fully-aligned head dimension (FlashAttention-2's work-partitioning
/// improvement is what lifted this from ~0.35 to ~0.65 of peak).
constexpr double kFlashAttention2Efficiency = 0.65;

FlashAttentionEstimate estimate_flash_attention(
    const FlashAttentionProblem& problem, const gpu::GpuSpec& gpu);

}  // namespace codesign::gemm
