#include "gemmsim/gemm_problem.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace codesign::gemm {

GemmProblem GemmProblem::gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                              DType dtype) {
  GemmProblem p;
  p.m = m;
  p.n = n;
  p.k = k;
  p.batch = 1;
  p.dtype = dtype;
  p.validate();
  return p;
}

GemmProblem GemmProblem::bmm(std::int64_t batch, std::int64_t m,
                             std::int64_t n, std::int64_t k, DType dtype) {
  GemmProblem p;
  p.m = m;
  p.n = n;
  p.k = k;
  p.batch = batch;
  p.dtype = dtype;
  p.validate();
  return p;
}

GemmProblem GemmProblem::folded_3d(std::int64_t d0, std::int64_t d1,
                                   std::int64_t k, std::int64_t n,
                                   DType dtype) {
  return gemm(d0 * d1, n, k, dtype);
}

double GemmProblem::flops() const {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k) * static_cast<double>(batch);
}

double GemmProblem::min_bytes() const {
  const double e = static_cast<double>(gpu::dtype_size(dtype));
  const double a = static_cast<double>(m) * static_cast<double>(k);
  const double b = static_cast<double>(k) * static_cast<double>(n);
  const double c = static_cast<double>(m) * static_cast<double>(n);
  const double c_traffic = accumulate_into_c ? 2.0 * c : c;
  return (a + b + c_traffic) * e * static_cast<double>(batch);
}

double GemmProblem::arithmetic_intensity() const {
  return flops() / min_bytes();
}

double GemmProblem::footprint_bytes() const {
  const double e = static_cast<double>(gpu::dtype_size(dtype));
  return e * static_cast<double>(batch) *
         (static_cast<double>(m) * static_cast<double>(k) +
          static_cast<double>(k) * static_cast<double>(n) +
          static_cast<double>(m) * static_cast<double>(n));
}

std::size_t GemmProblem::hash_value() const noexcept {
  // FNV-1a over the distinguishing fields; good enough dispersion for the
  // few thousand distinct shapes a design-space sweep touches.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(m));
  mix(static_cast<std::uint64_t>(n));
  mix(static_cast<std::uint64_t>(k));
  mix(static_cast<std::uint64_t>(batch));
  mix(static_cast<std::uint64_t>(dtype));
  mix(accumulate_into_c ? 1u : 0u);
  return static_cast<std::size_t>(h);
}

std::string GemmProblem::to_string() const {
  if (batch == 1) {
    return str_format("GEMM(%lld x %lld x %lld, %s)",
                      static_cast<long long>(m), static_cast<long long>(n),
                      static_cast<long long>(k),
                      gpu::dtype_name(dtype).c_str());
  }
  return str_format("BMM(b=%lld, %lld x %lld x %lld, %s)",
                    static_cast<long long>(batch), static_cast<long long>(m),
                    static_cast<long long>(n), static_cast<long long>(k),
                    gpu::dtype_name(dtype).c_str());
}

void GemmProblem::validate() const {
  if (m <= 0 || n <= 0 || k <= 0) {
    throw ShapeError("GEMM dimensions must be positive, got " + to_string());
  }
  if (batch <= 0) {
    throw ShapeError("GEMM batch must be positive, got " + to_string());
  }
}

}  // namespace codesign::gemm
