// gemm_problem.hpp — description of a (batched) GEMM workload.
//
// C_i = alpha * A_i B_i + beta * C_i,  i = 1..batch   (paper Eq. 1)
// with A: m×k, B: k×n, C: m×n. batch == 1 is a plain GEMM; batch > 1 is the
// BMM used by attention score / attention-over-value computation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "gpuarch/dtype.hpp"

namespace codesign::gemm {

using gpu::DType;

struct GemmProblem {
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;
  std::int64_t batch = 1;
  DType dtype = DType::kFP16;
  /// beta != 0 (e.g. fused residual add): C is read as well as written.
  bool accumulate_into_c = false;

  /// Named constructors -----------------------------------------------
  static GemmProblem gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                          DType dtype = DType::kFP16);
  static GemmProblem bmm(std::int64_t batch, std::int64_t m, std::int64_t n,
                         std::int64_t k, DType dtype = DType::kFP16);

  /// Fold a 3-D × 2-D tensor contraction (d0, d1, k) × (k, n) into a 2-D
  /// GEMM (d0·d1, k) × (k, n). The paper's appendix (Fig 14) shows the
  /// ordering of the folded dimensions does not affect performance, so the
  /// model treats them identically by construction.
  static GemmProblem folded_3d(std::int64_t d0, std::int64_t d1,
                               std::int64_t k, std::int64_t n,
                               DType dtype = DType::kFP16);

  /// Total useful math, counting one multiply-add as 2 FLOPs.
  double flops() const;

  /// Minimum DRAM traffic in bytes: read A and B once, write C once (plus
  /// read C when accumulating). L2-resident reuse is assumed within one
  /// kernel, which holds for the transformer-sized operands studied here.
  double min_bytes() const;

  /// flops() / min_bytes(): compared against the GPU's ridge point to
  /// classify the problem as compute- or memory-bound.
  double arithmetic_intensity() const;

  /// Memory footprint of all operands (bytes), for capacity checks.
  double footprint_bytes() const;

  bool operator==(const GemmProblem&) const = default;

  /// Combined hash of all fields (shape, batch, dtype, accumulate flag).
  /// Two problems hash equal iff operator== holds, so GemmProblem can key
  /// unordered containers such as the estimate cache.
  std::size_t hash_value() const noexcept;

  std::string to_string() const;

  /// Throws ShapeError unless all dims and batch are positive.
  void validate() const;
};

}  // namespace codesign::gemm

template <>
struct std::hash<codesign::gemm::GemmProblem> {
  std::size_t operator()(const codesign::gemm::GemmProblem& p) const noexcept {
    return p.hash_value();
  }
};
