#include "gemmsim/simulator.hpp"

#include "common/error.hpp"
#include "gemmsim/roofline.hpp"
#include "gpuarch/tile_config.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/req_scope.hpp"

namespace codesign::gemm {

GemmSimulator::GemmSimulator(const gpu::GpuSpec& gpu, TilePolicy policy)
    : gpu_(&gpu),
      policy_(policy),
      prepared_(std::make_shared<const PreparedCatalogue>(gpu, policy)) {
  gpu.validate();
}

GemmSimulator GemmSimulator::for_gpu(const std::string& gpu_name,
                                     TilePolicy policy) {
  return GemmSimulator(gpu::gpu_by_name(gpu_name), policy);
}

namespace {

KernelEstimate estimate_uncached(const GemmProblem& problem, TilePolicy policy,
                                 const gpu::GpuSpec& gpu) {
  if (policy == TilePolicy::kFixedLargest) {
    return estimate_with_tile(problem, gpu::largest_tile(), gpu);
  }
  return select_kernel(problem, gpu);
}

/// Per-estimate counters, recorded from the *returned* estimate so the
/// numbers are identical whether it came from the cache or a fresh compute
/// — which makes them deterministic at any thread count and cache state
/// (a hit returns exactly what the miss computed).
void record_estimate_metrics(const KernelEstimate& est) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("gemmsim.estimate.calls").add();
  reg.counter("gemmsim.estimate.tile", "tile=" + est.tile.name()).add();
  reg.counter("gemmsim.estimate.bound",
              std::string("bound=") + bound_name(est.bound))
      .add();
  reg.counter("gemmsim.estimate.waves")
      .add(static_cast<std::uint64_t>(est.wave_q.waves));
  reg.counter("gemmsim.estimate.blocks")
      .add(static_cast<std::uint64_t>(est.tile_q.tiles_total));
}

}  // namespace

KernelEstimate GemmSimulator::estimate(const GemmProblem& problem) const {
  KernelEstimate est;
  if (cache_ != nullptr) {
    est = cache_->get_or_compute(
        EstimateCache::Key{problem, policy_, gpu_},
        [&] { return estimate_uncached(problem, policy_, *gpu_); });
  } else {
    est = estimate_uncached(problem, policy_, *gpu_);
  }
  if (obs::MetricsRegistry::enabled()) record_estimate_metrics(est);
  if (auto* rs = obs::RequestScope::current()) rs->estimates += 1;
  return est;
}

void GemmSimulator::enable_cache(const CacheOptions& options) {
  cache_ = std::make_shared<EstimateCache>(options);
}

void GemmSimulator::set_cache(std::shared_ptr<EstimateCache> cache) {
  cache_ = std::move(cache);
}

double GemmSimulator::latency(const GemmProblem& problem) const {
  return estimate(problem).time;
}

double GemmSimulator::throughput_tflops(const GemmProblem& problem) const {
  return estimate(problem).tflops();
}

double GemmSimulator::sequence_latency(
    const std::vector<GemmProblem>& problems) const {
  // Delegates to the batched overload: per-kernel times come from one
  // estimate_times() call and are summed in sequence order, bit-identical
  // to a latency() loop (a batch item is exactly an estimate() call).
  BatchWorkspace workspace;
  return sequence_latency(std::span<const GemmProblem>(problems), workspace);
}

void GemmSimulator::estimate_many(std::span<const GemmProblem> problems,
                                  std::span<KernelEstimate> out,
                                  BatchWorkspace& workspace) const {
  CODESIGN_CHECK(problems.size() == out.size(),
                 "estimate_many: problems/out size mismatch");
  const std::size_t n = problems.size();
  if (n == 0) return;
  if (obs::EventRecorder::active() != nullptr) {
    // Trace fidelity: the selection trail emits one event per candidate
    // tile per uncached selection, interleaved with cache probes in scalar
    // order. Reproducing that from the batch would re-derive the scalar
    // path, so traced runs just take it.
    for (std::size_t i = 0; i < n; ++i) out[i] = estimate(problems[i]);
    return;
  }
  if (cache_ == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = prepared_->estimate_one(problems[i]);
    }
  } else {
    workspace.keys.clear();
    workspace.keys.reserve(n);
    for (const GemmProblem& p : problems) {
      workspace.keys.push_back(EstimateCache::Key{p, policy_, gpu_});
    }
    workspace.hit.resize(n);
    cache_->lookup_many(workspace.keys, out.data(), workspace.hit.data(),
                        workspace.scratch);
    bool any_miss = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (workspace.hit[i] == 0) {
        out[i] = prepared_->estimate_one(problems[i]);
        any_miss = true;
      }
    }
    if (any_miss) {
      // Flip hit flags into miss flags for the grouped insert. A duplicate
      // problem within one batch computes twice (bit-identical results) and
      // stores once — the same racing-miss rule two scalar threads follow.
      for (std::size_t i = 0; i < n; ++i) workspace.hit[i] ^= 1;
      cache_->insert_many(workspace.keys, out, workspace.hit.data(),
                          workspace.scratch);
    }
  }
  if (obs::MetricsRegistry::enabled()) {
    // Recorded from the returned estimates in input order, exactly as N
    // scalar estimate() calls would — deterministic counters stay identical.
    for (std::size_t i = 0; i < n; ++i) record_estimate_metrics(out[i]);
  }
  // Request attribution (serve): a batch item is exactly one estimate. The
  // traced path above already counted through the scalar calls.
  if (auto* rs = obs::RequestScope::current()) rs->estimates += n;
}

void GemmSimulator::estimate_many(std::span<const GemmProblem> problems,
                                  std::span<KernelEstimate> out) const {
  BatchWorkspace workspace;
  estimate_many(problems, out, workspace);
}

void GemmSimulator::estimate_times(std::span<const GemmProblem> problems,
                                   std::span<double> out,
                                   BatchWorkspace& workspace) const {
  CODESIGN_CHECK(problems.size() == out.size(),
                 "estimate_times: problems/out size mismatch");
  const std::size_t n = problems.size();
  if (n == 0) return;
  if (obs::EventRecorder::active() != nullptr ||
      obs::MetricsRegistry::enabled()) {
    // Metrics want the full estimate per item (tile/bound/wave counters),
    // so observability runs route through estimate_many and copy the times.
    workspace.estimates.resize(n);
    estimate_many(problems, workspace.estimates, workspace);
    for (std::size_t i = 0; i < n; ++i) out[i] = workspace.estimates[i].time;
    return;
  }
  if (cache_ == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = prepared_->time_one(problems[i]);
    }
    if (auto* rs = obs::RequestScope::current()) rs->estimates += n;
    return;
  }
  workspace.keys.clear();
  workspace.keys.reserve(n);
  for (const GemmProblem& p : problems) {
    workspace.keys.push_back(EstimateCache::Key{p, policy_, gpu_});
  }
  workspace.hit.resize(n);
  cache_->lookup_times_many(workspace.keys, out.data(), workspace.hit.data(),
                            workspace.scratch);
  bool any_miss = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (workspace.hit[i] == 0) {
      if (!any_miss) {
        workspace.estimates.resize(n);
        any_miss = true;
      }
      // Misses materialize the full estimate so the insert below leaves the
      // cache in exactly the state N scalar estimate() calls would.
      workspace.estimates[i] = prepared_->estimate_one(problems[i]);
      out[i] = workspace.estimates[i].time;
    }
  }
  if (any_miss) {
    for (std::size_t i = 0; i < n; ++i) workspace.hit[i] ^= 1;
    cache_->insert_many(workspace.keys, workspace.estimates,
                        workspace.hit.data(), workspace.scratch);
  }
  if (auto* rs = obs::RequestScope::current()) rs->estimates += n;
}

double GemmSimulator::sequence_latency(std::span<const GemmProblem> problems,
                                       BatchWorkspace& workspace) const {
  CODESIGN_CHECK(!problems.empty(), "empty kernel sequence");
  workspace.times.resize(problems.size());
  estimate_times(problems, workspace.times, workspace);
  double total = 0.0;
  for (const double t : workspace.times) total += t;
  return total;
}

DesResult GemmSimulator::simulate(const GemmProblem& problem,
                                  const DesOptions& options) const {
  const KernelEstimate est = estimate(problem);
  return simulate_kernel(problem, est.tile, *gpu_, options);
}

FlashAttentionEstimate GemmSimulator::estimate_flash(
    const FlashAttentionProblem& problem) const {
  return estimate_flash_attention(problem, *gpu_);
}

}  // namespace codesign::gemm
