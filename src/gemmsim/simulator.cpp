#include "gemmsim/simulator.hpp"

#include "common/error.hpp"
#include "gemmsim/roofline.hpp"
#include "gpuarch/tile_config.hpp"
#include "obs/metrics.hpp"

namespace codesign::gemm {

GemmSimulator::GemmSimulator(const gpu::GpuSpec& gpu, TilePolicy policy)
    : gpu_(&gpu), policy_(policy) {
  gpu.validate();
}

GemmSimulator GemmSimulator::for_gpu(const std::string& gpu_name,
                                     TilePolicy policy) {
  return GemmSimulator(gpu::gpu_by_name(gpu_name), policy);
}

namespace {

KernelEstimate estimate_uncached(const GemmProblem& problem, TilePolicy policy,
                                 const gpu::GpuSpec& gpu) {
  if (policy == TilePolicy::kFixedLargest) {
    return estimate_with_tile(problem, gpu::largest_tile(), gpu);
  }
  return select_kernel(problem, gpu);
}

/// Per-estimate counters, recorded from the *returned* estimate so the
/// numbers are identical whether it came from the cache or a fresh compute
/// — which makes them deterministic at any thread count and cache state
/// (a hit returns exactly what the miss computed).
void record_estimate_metrics(const KernelEstimate& est) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("gemmsim.estimate.calls").add();
  reg.counter("gemmsim.estimate.tile", "tile=" + est.tile.name()).add();
  reg.counter("gemmsim.estimate.bound",
              std::string("bound=") + bound_name(est.bound))
      .add();
  reg.counter("gemmsim.estimate.waves")
      .add(static_cast<std::uint64_t>(est.wave_q.waves));
  reg.counter("gemmsim.estimate.blocks")
      .add(static_cast<std::uint64_t>(est.tile_q.tiles_total));
}

}  // namespace

KernelEstimate GemmSimulator::estimate(const GemmProblem& problem) const {
  KernelEstimate est;
  if (cache_ != nullptr) {
    est = cache_->get_or_compute(
        EstimateCache::Key{problem, policy_, gpu_},
        [&] { return estimate_uncached(problem, policy_, *gpu_); });
  } else {
    est = estimate_uncached(problem, policy_, *gpu_);
  }
  if (obs::MetricsRegistry::enabled()) record_estimate_metrics(est);
  return est;
}

void GemmSimulator::enable_cache(const CacheOptions& options) {
  cache_ = std::make_shared<EstimateCache>(options);
}

void GemmSimulator::set_cache(std::shared_ptr<EstimateCache> cache) {
  cache_ = std::move(cache);
}

double GemmSimulator::latency(const GemmProblem& problem) const {
  return estimate(problem).time;
}

double GemmSimulator::throughput_tflops(const GemmProblem& problem) const {
  return estimate(problem).tflops();
}

double GemmSimulator::sequence_latency(
    const std::vector<GemmProblem>& problems) const {
  CODESIGN_CHECK(!problems.empty(), "empty kernel sequence");
  double total = 0.0;
  for (const GemmProblem& p : problems) total += latency(p);
  return total;
}

DesResult GemmSimulator::simulate(const GemmProblem& problem,
                                  const DesOptions& options) const {
  const KernelEstimate est = estimate(problem);
  return simulate_kernel(problem, est.tile, *gpu_, options);
}

FlashAttentionEstimate GemmSimulator::estimate_flash(
    const FlashAttentionProblem& problem) const {
  return estimate_flash_attention(problem, *gpu_);
}

}  // namespace codesign::gemm
