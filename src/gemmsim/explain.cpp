#include "gemmsim/explain.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "gpuarch/tensor_core.hpp"

namespace codesign::gemm {

double EfficiencyBreakdown::total_factor() const {
  double f = 1.0;
  for (const EfficiencyFactor& e : factors) f *= e.factor;
  return f;
}

EfficiencyBreakdown explain_gemm(const GemmProblem& problem,
                                 const gpu::GpuSpec& gpu) {
  problem.validate();
  EfficiencyBreakdown b;
  b.estimate = select_kernel(problem, gpu);
  const KernelEstimate& e = b.estimate;

  const double peak = std::max(gpu.tensor_flops(problem.dtype),
                               gpu.vector_flops(problem.dtype));
  CODESIGN_CHECK(peak > 0.0, "device has no math path for this dtype");
  b.peak_tflops = peak / 1e12;
  b.observed_tflops = e.tflops();

  // 1. achievable fraction: no real kernel reaches datasheet peak.
  b.factors.push_back(
      {"achievable", gpu.achievable_math_fraction,
       str_format("best-kernel ceiling: %.0f%% of the %.0f TFLOP/s peak",
                  100.0 * gpu.achievable_math_fraction, b.peak_tflops)});

  // 2. alignment: the §III-B tensor-core ladder (or the fallback path).
  const double align_rate =
      gpu::effective_math_rate(e.alignment, problem.dtype, gpu);
  const double f_align = align_rate / (peak * gpu.achievable_math_fraction);
  b.factors.push_back(
      {"alignment", f_align,
       str_format("pow2 granules m/n/k = %lld/%lld/%lld elems, combined "
                  "%.2f, tensor cores %s",
                  static_cast<long long>(e.alignment.pow2_m),
                  static_cast<long long>(e.alignment.pow2_n),
                  static_cast<long long>(e.alignment.pow2_k),
                  e.alignment.combined,
                  e.alignment.tensor_cores ? "on" : "OFF")});

  // 3. tile intrinsic efficiency of the selected configuration.
  b.factors.push_back(
      {"tile", e.tile.intrinsic_efficiency,
       str_format("selected %s (operand reuse of this block shape)",
                  e.tile.name().c_str())});

  // 4. tile quantization: useful vs padded volume.
  const double useful = static_cast<double>(problem.m) * problem.n * problem.k;
  const double padded = static_cast<double>(e.tile_q.padded_m) *
                        e.tile_q.padded_n * e.tile_q.padded_k;
  b.factors.push_back(
      {"tile_quantization", useful / padded,
       str_format("padded to %lld x %lld x %lld (%.1f%% wasted)",
                  static_cast<long long>(e.tile_q.padded_m),
                  static_cast<long long>(e.tile_q.padded_n),
                  static_cast<long long>(e.tile_q.padded_k),
                  100.0 * e.tile_q.wasted_compute_fraction)});

  // 5. wave quantization.
  b.factors.push_back(
      {"wave_quantization", e.wave_q.efficiency,
       str_format("%lld tiles in %lld waves of %lld",
                  static_cast<long long>(e.tile_q.tiles_total),
                  static_cast<long long>(e.wave_q.waves),
                  static_cast<long long>(e.wave_q.blocks_per_wave))});

  // 6. roofline: memory- or launch-bound gap between the math pipeline's
  //    time and the kernel's actual time.
  const double f_roof = e.compute_time / e.time;
  b.factors.push_back(
      {"roofline", f_roof,
       str_format("%s-bound: compute %s vs memory %s + launch %s",
                  bound_name(e.bound), human_time(e.compute_time).c_str(),
                  human_time(e.memory_time).c_str(),
                  human_time(e.launch_overhead).c_str())});

  return b;
}

std::string EfficiencyBreakdown::to_string() const {
  std::ostringstream os;
  os << estimate.problem.to_string() << "\n";
  os << str_format("  datasheet peak : %8.1f TFLOP/s\n", peak_tflops);
  double running = peak_tflops;
  for (const EfficiencyFactor& f : factors) {
    running *= f.factor;
    os << str_format("  x %.3f %-18s -> %8.1f TFLOP/s  (%s)\n", f.factor,
                     f.name.c_str(), running, f.detail.c_str());
  }
  os << str_format("  observed       : %8.1f TFLOP/s\n", observed_tflops);
  return os.str();
}

}  // namespace codesign::gemm
