#include "gemmsim/quantization.hpp"

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace codesign::gemm {

TileQuantization tile_quantization(const GemmProblem& p,
                                   const gpu::TileConfig& tile) {
  p.validate();
  CODESIGN_CHECK(tile.tm > 0 && tile.tn > 0 && tile.tk > 0,
                 "tile dimensions must be positive");
  TileQuantization q;
  q.tiles_m = ceil_div(p.m, tile.tm);
  q.tiles_n = ceil_div(p.n, tile.tn);
  q.tiles_total = q.tiles_m * q.tiles_n * p.batch;
  q.padded_m = q.tiles_m * tile.tm;
  q.padded_n = q.tiles_n * tile.tn;
  q.padded_k = round_up(p.k, tile.tk);
  const double useful = static_cast<double>(p.m) * static_cast<double>(p.n) *
                        static_cast<double>(p.k);
  const double scheduled = static_cast<double>(q.padded_m) *
                           static_cast<double>(q.padded_n) *
                           static_cast<double>(q.padded_k);
  q.wasted_compute_fraction = 1.0 - useful / scheduled;
  return q;
}

WaveQuantization wave_quantization(std::int64_t total_tiles,
                                   const gpu::TileConfig& tile,
                                   const gpu::GpuSpec& gpu) {
  CODESIGN_CHECK(total_tiles > 0, "wave quantization needs at least one tile");
  WaveQuantization w;
  w.blocks_per_wave =
      static_cast<std::int64_t>(gpu.sm_count) * tile.blocks_per_sm;
  w.waves = ceil_div(total_tiles, w.blocks_per_wave);
  const std::int64_t rem = total_tiles % w.blocks_per_wave;
  w.tail_blocks = rem == 0 ? w.blocks_per_wave : rem;
  w.efficiency = static_cast<double>(total_tiles) /
                 static_cast<double>(w.waves * w.blocks_per_wave);
  return w;
}

bool wave_quantization_free(std::int64_t x, std::int64_t y,
                            const gpu::TileConfig& tile,
                            const gpu::GpuSpec& gpu) {
  CODESIGN_CHECK(x > 0 && y > 0, "dimensions must be positive");
  const std::int64_t sms = gpu.sm_count;
  const std::int64_t a = ceil_div(x, tile.tm) * ceil_div(y, tile.tn);
  const std::int64_t b = ceil_div(x, tile.tn) * ceil_div(y, tile.tm);
  return a % sms == 0 || b % sms == 0;
}

}  // namespace codesign::gemm
