// roofline.hpp — the roofline performance model.
//
// attainable rate = min(math_roof, bandwidth × arithmetic_intensity)
//
// Small GEMMs and the attention BMMs sit left of the ridge point and are
// memory-bound (paper §V: "GEMMs are memory-bound for small matrices");
// the big MLP/QKV GEMMs sit right of it and are compute-bound.
#pragma once

#include "gemmsim/gemm_problem.hpp"
#include "gpuarch/gpu_spec.hpp"

namespace codesign::gemm {

enum class Bound { kCompute, kMemory, kLaunch };

const char* bound_name(Bound b);

struct Roofline {
  double math_rate = 0.0;  ///< FLOP/s roof
  double mem_rate = 0.0;   ///< bytes/s roof

  /// Arithmetic intensity (FLOP/byte) at which the two roofs intersect.
  double ridge_point() const { return math_rate / mem_rate; }

  /// Attainable FLOP/s at a given arithmetic intensity.
  double attainable_flops(double intensity) const;

  /// Time lower bound for a workload of `flops` math and `bytes` traffic.
  double time(double flops, double bytes) const;

  /// Which roof limits the workload.
  Bound bound_for(double flops, double bytes) const;
};

/// Roofline using a GPU's *achievable* (not peak) rates for a dtype,
/// ignoring alignment (alignment enters through tensor_core.hpp).
Roofline device_roofline(const gpu::GpuSpec& gpu, DType dtype);

}  // namespace codesign::gemm
