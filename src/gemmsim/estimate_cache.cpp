#include "gemmsim/estimate_cache.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "gemmsim/simulator.hpp"
#include "obs/metrics.hpp"

namespace codesign::gemm {

std::size_t EstimateCache::Key::hash_value() const noexcept {
  if (memo_hash != 0) return memo_hash;
  std::size_t h = problem.hash_value();
  h ^= static_cast<std::size_t>(static_cast<int>(policy)) + 0x9e3779b97f4a7c15ull +
       (h << 6) + (h >> 2);
  h ^= std::hash<const gpu::GpuSpec*>{}(gpu) + 0x9e3779b97f4a7c15ull +
       (h << 6) + (h >> 2);
  memo_hash = h;
  return h;
}

EstimateCache::EstimateCache(const CacheOptions& options) : options_(options) {
  CODESIGN_CHECK(options_.capacity > 0, "cache capacity must be positive");
  options_.shards = std::max<std::size_t>(1, options_.shards);
  options_.shards = std::min(options_.shards, options_.capacity);
  per_shard_capacity_ = (options_.capacity + options_.shards - 1) / options_.shards;
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

EstimateCache::Shard& EstimateCache::shard_for(const Key& key) {
  return *shards_[key.hash_value() % shards_.size()];
}

KernelEstimate EstimateCache::get_or_compute(
    const Key& key, const std::function<KernelEstimate()>& compute) {
  CODESIGN_FAILPOINT_T("gemmsim.cache.lookup", key.hash_value());
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->estimate;
    }
    ++shard.misses;
  }
  // Compute outside the lock: a concurrent miss on the same key duplicates
  // the (pure) computation instead of serializing every other shape behind it.
  const KernelEstimate estimate = compute();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.index.find(key) == shard.index.end()) {
      insert_locked(shard, key, estimate);
    }
  }
  return estimate;
}

bool EstimateCache::lookup(const Key& key, KernelEstimate* out) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (out != nullptr) *out = it->second->estimate;
  return true;
}

void EstimateCache::insert(const Key& key, const KernelEstimate& estimate) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->estimate = estimate;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  insert_locked(shard, key, estimate);
}

template <typename OnHit>
std::size_t EstimateCache::probe_many(std::span<const Key> keys,
                                      std::uint8_t* hit, BatchScratch& scratch,
                                      OnHit&& on_hit) {
  const std::size_t n = keys.size();
  // Fire the lookup failpoint per key in input order, the exact sequence N
  // scalar get_or_compute calls would produce. prob:P:seed triggers hash
  // the token so their fire set is order-independent anyway, but keeping
  // the order makes once:/every: drills line up too.
  for (std::size_t i = 0; i < n; ++i) {
    CODESIGN_FAILPOINT_T("gemmsim.cache.lookup", keys[i].hash_value());
  }
  const std::size_t num_shards = shards_.size();
  scratch.order.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.order[i] = static_cast<std::uint32_t>(i);
  }
  // Stable sort by shard: each stripe lock is taken at most once per call,
  // and within a shard the LRU touch order still follows input order.
  std::stable_sort(scratch.order.begin(), scratch.order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return keys[a].hash_value() % num_shards <
                            keys[b].hash_value() % num_shards;
                   });
  std::size_t total_hits = 0;
  std::size_t pos = 0;
  while (pos < n) {
    const std::size_t shard_id =
        keys[scratch.order[pos]].hash_value() % num_shards;
    Shard& shard = *shards_[shard_id];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (; pos < n &&
           keys[scratch.order[pos]].hash_value() % num_shards == shard_id;
         ++pos) {
      const std::uint32_t i = scratch.order[pos];
      auto it = shard.index.find(keys[i]);
      if (it == shard.index.end()) {
        ++shard.misses;
        hit[i] = 0;
        continue;
      }
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      on_hit(i, it->second->estimate);
      hit[i] = 1;
      ++total_hits;
    }
  }
  return total_hits;
}

std::size_t EstimateCache::lookup_many(std::span<const Key> keys,
                                       KernelEstimate* out, std::uint8_t* hit,
                                       BatchScratch& scratch) {
  return probe_many(keys, hit, scratch,
                    [out](std::uint32_t i, const KernelEstimate& e) {
                      out[i] = e;
                    });
}

std::size_t EstimateCache::lookup_times_many(std::span<const Key> keys,
                                             double* out, std::uint8_t* hit,
                                             BatchScratch& scratch) {
  return probe_many(keys, hit, scratch,
                    [out](std::uint32_t i, const KernelEstimate& e) {
                      out[i] = e.time;
                    });
}

void EstimateCache::insert_many(std::span<const Key> keys,
                                std::span<const KernelEstimate> estimates,
                                const std::uint8_t* miss,
                                BatchScratch& scratch) {
  CODESIGN_CHECK(keys.size() == estimates.size(),
                 "insert_many: keys/estimates size mismatch");
  const std::size_t num_shards = shards_.size();
  scratch.order.clear();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (miss == nullptr || miss[i] != 0) {
      scratch.order.push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::stable_sort(scratch.order.begin(), scratch.order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return keys[a].hash_value() % num_shards <
                            keys[b].hash_value() % num_shards;
                   });
  std::size_t pos = 0;
  const std::size_t m = scratch.order.size();
  while (pos < m) {
    const std::size_t shard_id =
        keys[scratch.order[pos]].hash_value() % num_shards;
    Shard& shard = *shards_[shard_id];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (; pos < m &&
           keys[scratch.order[pos]].hash_value() % num_shards == shard_id;
         ++pos) {
      const std::uint32_t i = scratch.order[pos];
      // Leave already-present keys untouched — the same racing-miss rule
      // get_or_compute applies when a concurrent thread computed first.
      if (shard.index.find(keys[i]) == shard.index.end()) {
        insert_locked(shard, keys[i], estimates[i]);
      }
    }
  }
}

void EstimateCache::insert_locked(Shard& shard, const Key& key,
                                  const KernelEstimate& estimate) {
  while (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{key, estimate});
  shard.index.emplace(key, shard.lru.begin());
}

void EstimateCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

CacheStats EstimateCache::stats() const {
  CacheStats s;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.hits += shard->hits;
    s.misses += shard->misses;
    s.evictions += shard->evictions;
    s.entries += shard->lru.size();
  }
  return s;
}

void EstimateCache::publish_metrics(obs::MetricsRegistry& registry) const {
  const CacheStats s = stats();
  constexpr auto kBe = obs::Stability::kBestEffort;
  registry.gauge("gemmsim.cache.hits", {}, kBe)
      .set(static_cast<double>(s.hits));
  registry.gauge("gemmsim.cache.misses", {}, kBe)
      .set(static_cast<double>(s.misses));
  registry.gauge("gemmsim.cache.evictions", {}, kBe)
      .set(static_cast<double>(s.evictions));
  registry.gauge("gemmsim.cache.entries", {}, kBe)
      .set(static_cast<double>(s.entries));
  registry.gauge("gemmsim.cache.hit_rate", {}, kBe).set(s.hit_rate());
}

void EstimateCache::append_metrics(obs::MetricsSnapshot& snapshot) const {
  const CacheStats s = stats();
  const auto gauge = [&snapshot](const char* name, double v) {
    obs::MetricsSnapshot::Series series;
    series.name = name;
    series.kind = obs::MetricKind::kGauge;
    series.stability = obs::Stability::kBestEffort;
    series.value = v;
    snapshot.add_series(std::move(series));
  };
  gauge("gemmsim.cache.hits", static_cast<double>(s.hits));
  gauge("gemmsim.cache.misses", static_cast<double>(s.misses));
  gauge("gemmsim.cache.evictions", static_cast<double>(s.evictions));
  gauge("gemmsim.cache.entries", static_cast<double>(s.entries));
  gauge("gemmsim.cache.hit_rate", s.hit_rate());
}

}  // namespace codesign::gemm
