#include "gemmsim/roofline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace codesign::gemm {

const char* bound_name(Bound b) {
  switch (b) {
    case Bound::kCompute: return "compute";
    case Bound::kMemory: return "memory";
    case Bound::kLaunch: return "launch";
  }
  return "?";
}

double Roofline::attainable_flops(double intensity) const {
  CODESIGN_CHECK(intensity > 0.0, "arithmetic intensity must be positive");
  return std::min(math_rate, mem_rate * intensity);
}

double Roofline::time(double flops, double bytes) const {
  CODESIGN_CHECK(flops >= 0.0 && bytes >= 0.0, "negative workload");
  CODESIGN_CHECK(math_rate > 0.0 && mem_rate > 0.0, "roofline rates unset");
  return std::max(flops / math_rate, bytes / mem_rate);
}

Bound Roofline::bound_for(double flops, double bytes) const {
  return flops / math_rate >= bytes / mem_rate ? Bound::kCompute
                                               : Bound::kMemory;
}

Roofline device_roofline(const gpu::GpuSpec& gpu, DType dtype) {
  Roofline r;
  const double tc = gpu.achievable_tensor_flops(dtype);
  r.math_rate = tc > 0.0
                    ? tc
                    : gpu.vector_flops(dtype) * gpu.achievable_math_fraction;
  r.mem_rate = gpu.achievable_bandwidth();
  return r;
}

}  // namespace codesign::gemm
