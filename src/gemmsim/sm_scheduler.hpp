// sm_scheduler.hpp — a discrete-event simulation of thread-block scheduling.
//
// The analytical model (kernel_model.hpp) assumes the closed-form waves
// arithmetic `ceil(tiles / (SMs * occupancy))`. This module *simulates* the
// same kernel: thread blocks are dispatched to SM residency slots as they
// free up, exactly like the GPU's global work distributor. Tests assert the
// two agree, so the ceil math is validated by simulation rather than
// assumed. The DES also supports per-block duration noise, which shows that
// wave boundaries blur (but do not vanish) under realistic jitter — the
// reason the paper's measured saw-teeth have rounded corners.
#pragma once

#include <cstdint>
#include <vector>

#include "gemmsim/gemm_problem.hpp"
#include "gemmsim/kernel_model.hpp"
#include "gpuarch/gpu_spec.hpp"
#include "gpuarch/tile_config.hpp"

namespace codesign::gemm {

struct DesOptions {
  /// Standard deviation of per-block duration noise, as a fraction of the
  /// nominal duration (0 = deterministic).
  double block_noise_fraction = 0.0;
  std::uint64_t seed = 42;
};

struct DesResult {
  double makespan = 0.0;          ///< seconds from first dispatch to last retire
  std::int64_t blocks = 0;        ///< thread blocks executed
  std::int64_t slots = 0;         ///< SM residency slots (SMs * blocks_per_sm)
  double block_duration = 0.0;    ///< nominal per-block duration used
  double busy_fraction = 0.0;     ///< sum(block time) / (slots * makespan)
  std::vector<double> sm_busy_time;  ///< per-SM accumulated busy seconds
};

/// Simulate the execution of `problem` with a fixed tile configuration.
/// The per-block nominal duration is derived from the same alignment/
/// roofline model the analytical estimate uses, so any disagreement
/// between DES and the closed form isolates the scheduling arithmetic.
DesResult simulate_kernel(const GemmProblem& problem,
                          const gpu::TileConfig& tile,
                          const gpu::GpuSpec& gpu,
                          const DesOptions& options = {});

/// Simulate a back-to-back sequence of kernels on one stream (each kernel
/// waits for the previous; launch overhead separates them). Returns total
/// stream time. Used by the layer-pipeline integration tests.
double simulate_kernel_sequence(const std::vector<GemmProblem>& problems,
                                const gpu::GpuSpec& gpu,
                                const DesOptions& options = {});

}  // namespace codesign::gemm
