#include "gemmsim/kernel_model.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace codesign::gemm {

namespace {

std::string format_arg(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// The kernel-selection decision trail: one instant event per candidate
/// tile with the efficiency factors the model weighed and why it lost (or
/// won). Counters here are kBestEffort: with a cache attached the catalogue
/// walk only happens on misses, so the counts depend on hit patterns.
void record_selection_trail(const GemmProblem& problem,
                            const std::vector<KernelEstimate>& all,
                            std::size_t best_index) {
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("gemmsim.select.computed", {}, obs::Stability::kBestEffort)
        .add();
    reg.counter("gemmsim.select.candidates", {}, obs::Stability::kBestEffort)
        .add(all.size());
  }
  obs::EventRecorder* recorder = obs::EventRecorder::active();
  if (recorder == nullptr) return;
  const double origin_us = obs::EventRecorder::time_origin_us();
  const KernelEstimate& best = all[best_index];
  const std::string gemm = problem.to_string();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const KernelEstimate& e = all[i];
    obs::TraceEvent ev;
    ev.name = e.tile.name();
    ev.category = "select";
    ev.phase = 'i';
    ev.tid = obs::kTidSelection;
    ev.ts_us = origin_us;
    ev.clock = obs::EventClock::kSimulated;
    ev.args.emplace_back("gemm", gemm);
    ev.args.emplace_back("predicted_us", format_arg("%.4f", e.time * 1e6));
    ev.args.emplace_back("alignment",
                         format_arg("%.4f", e.alignment.combined));
    ev.args.emplace_back(
        "tile_quant_waste",
        format_arg("%.4f", e.tile_q.wasted_compute_fraction));
    ev.args.emplace_back("wave_efficiency",
                         format_arg("%.4f", e.wave_q.efficiency));
    ev.args.emplace_back("bound", bound_name(e.bound));
    if (i == best_index) {
      ev.args.emplace_back("verdict", "selected");
    } else {
      ev.args.emplace_back(
          "verdict",
          "rejected: " +
              format_arg("%.1f", 100.0 * (e.time / best.time - 1.0)) +
              "% slower than " + best.tile.name());
    }
    recorder->record(std::move(ev));
  }
}

}  // namespace

double KernelEstimate::flops_per_second() const {
  return time > 0.0 ? problem.flops() / time : 0.0;
}

KernelEstimate estimate_with_tile(const GemmProblem& problem,
                                  const gpu::TileConfig& tile,
                                  const gpu::GpuSpec& gpu) {
  problem.validate();
  KernelEstimate e;
  e.problem = problem;
  e.tile = tile;
  e.tile_q = tile_quantization(problem, tile);
  e.wave_q = wave_quantization(e.tile_q.tiles_total, tile, gpu);
  e.alignment = gpu::alignment_efficiency(problem.m, problem.n, problem.k,
                                          problem.dtype, gpu);

  // --- compute path ------------------------------------------------------
  // Scheduled math includes both quantization paddings: every partial tile
  // executes fully, and every partial wave occupies the whole machine.
  const double padded_flops =
      2.0 * static_cast<double>(e.tile_q.padded_m) *
      static_cast<double>(e.tile_q.padded_n) *
      static_cast<double>(e.tile_q.padded_k) *
      static_cast<double>(problem.batch);
  const double scheduled_flops = padded_flops / e.wave_q.efficiency;
  const double math_rate =
      gpu::effective_math_rate(e.alignment, problem.dtype, gpu) *
      tile.intrinsic_efficiency;
  CODESIGN_CHECK(math_rate > 0.0, "math rate must be positive");
  e.compute_time = scheduled_flops / math_rate;

  // --- memory path --------------------------------------------------------
  // Padded operand traffic (partial tiles still load full tiles of A and B).
  const double esize = static_cast<double>(gpu::dtype_size(problem.dtype));
  const double a_bytes = static_cast<double>(e.tile_q.padded_m) *
                         static_cast<double>(e.tile_q.padded_k) * esize;
  const double b_bytes = static_cast<double>(e.tile_q.padded_k) *
                         static_cast<double>(e.tile_q.padded_n) * esize;
  const double c_elems = static_cast<double>(e.tile_q.padded_m) *
                         static_cast<double>(e.tile_q.padded_n) * esize;
  const double c_bytes = problem.accumulate_into_c ? 2.0 * c_elems : c_elems;
  const double traffic =
      (a_bytes + b_bytes + c_bytes) * static_cast<double>(problem.batch);
  const double bandwidth = gpu::effective_bandwidth(e.alignment, gpu);
  e.memory_time = traffic / bandwidth;

  // --- combine -------------------------------------------------------------
  e.launch_overhead = gpu.kernel_launch_overhead;
  const double body = std::max(e.compute_time, e.memory_time);
  e.time = body + e.launch_overhead;
  if (e.launch_overhead > body) {
    e.bound = Bound::kLaunch;
  } else {
    e.bound = e.compute_time >= e.memory_time ? Bound::kCompute : Bound::kMemory;
  }
  return e;
}

std::vector<KernelEstimate> estimate_all_tiles(
    const GemmProblem& problem, const gpu::GpuSpec& gpu,
    const std::vector<gpu::TileConfig>& catalogue) {
  CODESIGN_CHECK(!catalogue.empty(), "tile catalogue must not be empty");
  std::vector<KernelEstimate> out;
  out.reserve(catalogue.size());
  for (const gpu::TileConfig& tile : catalogue) {
    out.push_back(estimate_with_tile(problem, tile, gpu));
  }
  return out;
}

KernelEstimate select_kernel(const GemmProblem& problem,
                             const gpu::GpuSpec& gpu,
                             const std::vector<gpu::TileConfig>& catalogue) {
  CODESIGN_FAILPOINT_T("gemmsim.select_kernel", problem.hash_value());
  const std::vector<KernelEstimate> all =
      estimate_all_tiles(problem, gpu, catalogue);
  const auto best = std::min_element(
      all.begin(), all.end(),
      [](const KernelEstimate& a, const KernelEstimate& b) {
        return a.time < b.time;  // strict: ties keep the earlier entry
      });
  record_selection_trail(problem, all,
                         static_cast<std::size_t>(best - all.begin()));
  return *best;
}

}  // namespace codesign::gemm
