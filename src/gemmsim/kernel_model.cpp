#include "gemmsim/kernel_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace codesign::gemm {

double KernelEstimate::flops_per_second() const {
  return time > 0.0 ? problem.flops() / time : 0.0;
}

KernelEstimate estimate_with_tile(const GemmProblem& problem,
                                  const gpu::TileConfig& tile,
                                  const gpu::GpuSpec& gpu) {
  problem.validate();
  KernelEstimate e;
  e.problem = problem;
  e.tile = tile;
  e.tile_q = tile_quantization(problem, tile);
  e.wave_q = wave_quantization(e.tile_q.tiles_total, tile, gpu);
  e.alignment = gpu::alignment_efficiency(problem.m, problem.n, problem.k,
                                          problem.dtype, gpu);

  // --- compute path ------------------------------------------------------
  // Scheduled math includes both quantization paddings: every partial tile
  // executes fully, and every partial wave occupies the whole machine.
  const double padded_flops =
      2.0 * static_cast<double>(e.tile_q.padded_m) *
      static_cast<double>(e.tile_q.padded_n) *
      static_cast<double>(e.tile_q.padded_k) *
      static_cast<double>(problem.batch);
  const double scheduled_flops = padded_flops / e.wave_q.efficiency;
  const double math_rate =
      gpu::effective_math_rate(e.alignment, problem.dtype, gpu) *
      tile.intrinsic_efficiency;
  CODESIGN_CHECK(math_rate > 0.0, "math rate must be positive");
  e.compute_time = scheduled_flops / math_rate;

  // --- memory path --------------------------------------------------------
  // Padded operand traffic (partial tiles still load full tiles of A and B).
  const double esize = static_cast<double>(gpu::dtype_size(problem.dtype));
  const double a_bytes = static_cast<double>(e.tile_q.padded_m) *
                         static_cast<double>(e.tile_q.padded_k) * esize;
  const double b_bytes = static_cast<double>(e.tile_q.padded_k) *
                         static_cast<double>(e.tile_q.padded_n) * esize;
  const double c_elems = static_cast<double>(e.tile_q.padded_m) *
                         static_cast<double>(e.tile_q.padded_n) * esize;
  const double c_bytes = problem.accumulate_into_c ? 2.0 * c_elems : c_elems;
  const double traffic =
      (a_bytes + b_bytes + c_bytes) * static_cast<double>(problem.batch);
  const double bandwidth = gpu::effective_bandwidth(e.alignment, gpu);
  e.memory_time = traffic / bandwidth;

  // --- combine -------------------------------------------------------------
  e.launch_overhead = gpu.kernel_launch_overhead;
  const double body = std::max(e.compute_time, e.memory_time);
  e.time = body + e.launch_overhead;
  if (e.launch_overhead > body) {
    e.bound = Bound::kLaunch;
  } else {
    e.bound = e.compute_time >= e.memory_time ? Bound::kCompute : Bound::kMemory;
  }
  return e;
}

std::vector<KernelEstimate> estimate_all_tiles(
    const GemmProblem& problem, const gpu::GpuSpec& gpu,
    const std::vector<gpu::TileConfig>& catalogue) {
  CODESIGN_CHECK(!catalogue.empty(), "tile catalogue must not be empty");
  std::vector<KernelEstimate> out;
  out.reserve(catalogue.size());
  for (const gpu::TileConfig& tile : catalogue) {
    out.push_back(estimate_with_tile(problem, tile, gpu));
  }
  return out;
}

KernelEstimate select_kernel(const GemmProblem& problem,
                             const gpu::GpuSpec& gpu,
                             const std::vector<gpu::TileConfig>& catalogue) {
  const std::vector<KernelEstimate> all =
      estimate_all_tiles(problem, gpu, catalogue);
  const auto best = std::min_element(
      all.begin(), all.end(),
      [](const KernelEstimate& a, const KernelEstimate& b) {
        return a.time < b.time;  // strict: ties keep the earlier entry
      });
  return *best;
}

}  // namespace codesign::gemm
