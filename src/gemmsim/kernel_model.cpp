#include "gemmsim/kernel_model.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace codesign::gemm {

namespace {

std::string format_arg(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// The kernel-selection decision trail: one instant event per candidate
/// tile with the efficiency factors the model weighed and why it lost (or
/// won). Counters here are kBestEffort: with a cache attached the catalogue
/// walk only happens on misses, so the counts depend on hit patterns.
///
/// All trace-formatting work (problem.to_string(), the per-tile arg
/// strings) lives strictly behind the `recorder == nullptr` early-out:
/// a --metrics run without --trace pays for two counter bumps and nothing
/// else, and the metrics-off fast path in select_kernel never calls this
/// function at all.
void record_selection_trail(const GemmProblem& problem,
                            const std::vector<KernelEstimate>& all,
                            std::size_t best_index,
                            obs::EventRecorder* recorder) {
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("gemmsim.select.computed", {}, obs::Stability::kBestEffort)
        .add();
    reg.counter("gemmsim.select.candidates", {}, obs::Stability::kBestEffort)
        .add(all.size());
  }
  if (recorder == nullptr) return;
  const double origin_us = obs::EventRecorder::time_origin_us();
  const KernelEstimate& best = all[best_index];
  const std::string gemm = problem.to_string();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const KernelEstimate& e = all[i];
    obs::TraceEvent ev;
    ev.name = e.tile.name();
    ev.category = "select";
    ev.phase = 'i';
    ev.tid = obs::kTidSelection;
    ev.ts_us = origin_us;
    ev.clock = obs::EventClock::kSimulated;
    ev.args.emplace_back("gemm", gemm);
    ev.args.emplace_back("predicted_us", format_arg("%.4f", e.time * 1e6));
    ev.args.emplace_back("alignment",
                         format_arg("%.4f", e.alignment.combined));
    ev.args.emplace_back(
        "tile_quant_waste",
        format_arg("%.4f", e.tile_q.wasted_compute_fraction));
    ev.args.emplace_back("wave_efficiency",
                         format_arg("%.4f", e.wave_q.efficiency));
    ev.args.emplace_back("bound", bound_name(e.bound));
    if (i == best_index) {
      ev.args.emplace_back("verdict", "selected");
    } else {
      ev.args.emplace_back(
          "verdict",
          "rejected: " +
              format_arg("%.1f", 100.0 * (e.time / best.time - 1.0)) +
              "% slower than " + best.tile.name());
    }
    recorder->record(std::move(ev));
  }
}

}  // namespace

double KernelEstimate::flops_per_second() const {
  return time > 0.0 ? problem.flops() / time : 0.0;
}

BoundBreakdown bound_breakdown(const KernelEstimate& e) {
  BoundBreakdown b;
  b.bound = e.bound;
  if (!(e.time > 0.0)) return b;
  b.launch = e.launch_overhead / e.time;
  if (e.compute_time >= e.memory_time) {
    // Compute roof. compute_time = padded / wave_eff scheduled math: the
    // partial-wave tail is the (1 - eff) slice, the tile padding is the
    // wasted fraction of the remaining full-wave math, and what is left is
    // useful work. memory_time is fully hidden under the roof.
    const double wave_eff = e.wave_q.efficiency;
    const double tail = e.compute_time * (1.0 - wave_eff);
    const double padded = e.compute_time * wave_eff;
    const double waste = padded * e.tile_q.wasted_compute_fraction;
    b.wave_tail = tail / e.time;
    b.tile_waste = waste / e.time;
    b.compute = (e.compute_time - tail - waste) / e.time;
  } else {
    // DRAM roof. memory_time moves padded operands; the useful share is the
    // unpadded traffic over the padded traffic for the same operand set
    // (esize and batch cancel). Waves do not add traffic in this model, so
    // wave_tail stays 0.
    const double c_mult = e.problem.accumulate_into_c ? 2.0 : 1.0;
    const double m = static_cast<double>(e.problem.m);
    const double n = static_cast<double>(e.problem.n);
    const double k = static_cast<double>(e.problem.k);
    const double pm = static_cast<double>(e.tile_q.padded_m);
    const double pn = static_cast<double>(e.tile_q.padded_n);
    const double pk = static_cast<double>(e.tile_q.padded_k);
    const double useful = m * k + k * n + c_mult * m * n;
    const double padded = pm * pk + pk * pn + c_mult * pm * pn;
    const double ratio = padded > 0.0 ? useful / padded : 1.0;
    b.memory = e.memory_time * ratio / e.time;
    b.tile_waste = e.memory_time * (1.0 - ratio) / e.time;
  }
  return b;
}

ProblemTerms problem_terms(const GemmProblem& problem,
                           const gpu::GpuSpec& gpu) {
  ProblemTerms t;
  t.alignment = gpu::alignment_efficiency(problem.m, problem.n, problem.k,
                                          problem.dtype, gpu);
  t.math_base = gpu::effective_math_rate(t.alignment, problem.dtype, gpu);
  t.bandwidth = gpu::effective_bandwidth(t.alignment, gpu);
  t.esize = static_cast<double>(gpu::dtype_size(problem.dtype));
  t.batch = static_cast<double>(problem.batch);
  t.launch_overhead = gpu.kernel_launch_overhead;
  t.accumulate_into_c = problem.accumulate_into_c;
  return t;
}

KernelEstimate estimate_with_tile(const GemmProblem& problem,
                                  const gpu::TileConfig& tile,
                                  const gpu::GpuSpec& gpu) {
  problem.validate();
  KernelEstimate e;
  e.problem = problem;
  e.tile = tile;
  e.tile_q = tile_quantization(problem, tile);
  e.wave_q = wave_quantization(e.tile_q.tiles_total, tile, gpu);
  const ProblemTerms terms = problem_terms(problem, gpu);
  e.alignment = terms.alignment;
  const TileTiming timing =
      tile_timing(e.tile_q, e.wave_q.efficiency, tile.intrinsic_efficiency,
                  terms);
  e.compute_time = timing.compute_time;
  e.memory_time = timing.memory_time;
  e.launch_overhead = terms.launch_overhead;
  e.time = timing.time;
  e.bound = timing.bound;
  return e;
}

std::vector<KernelEstimate> estimate_all_tiles(
    const GemmProblem& problem, const gpu::GpuSpec& gpu,
    const std::vector<gpu::TileConfig>& catalogue) {
  CODESIGN_CHECK(!catalogue.empty(), "tile catalogue must not be empty");
  std::vector<KernelEstimate> out;
  out.reserve(catalogue.size());
  for (const gpu::TileConfig& tile : catalogue) {
    out.push_back(estimate_with_tile(problem, tile, gpu));
  }
  return out;
}

KernelEstimate select_kernel(const GemmProblem& problem,
                             const gpu::GpuSpec& gpu,
                             const std::vector<gpu::TileConfig>& catalogue) {
  CODESIGN_FAILPOINT_T("gemmsim.select_kernel", problem.hash_value());
  CODESIGN_CHECK(!catalogue.empty(), "tile catalogue must not be empty");

  obs::EventRecorder* recorder = obs::EventRecorder::active();
  if (recorder == nullptr && !obs::MetricsRegistry::enabled()) {
    // Hot path: neither the selection trail nor its counters are wanted, so
    // skip materializing the per-tile KernelEstimate vector entirely — scan
    // the catalogue with the shared timing core and build only the winner.
    // Bit-identical to the trail path: same quantization calls, same
    // tile_timing expressions, same strict-< tie-break.
    problem.validate();
    const ProblemTerms terms = problem_terms(problem, gpu);
    std::size_t best_index = 0;
    double best_time = 0.0;
    for (std::size_t i = 0; i < catalogue.size(); ++i) {
      const gpu::TileConfig& tile = catalogue[i];
      const TileQuantization tile_q = tile_quantization(problem, tile);
      const WaveQuantization wave_q =
          wave_quantization(tile_q.tiles_total, tile, gpu);
      const TileTiming timing = tile_timing(
          tile_q, wave_q.efficiency, tile.intrinsic_efficiency, terms);
      if (i == 0 || timing.time < best_time) {
        best_index = i;
        best_time = timing.time;
      }
    }
    return estimate_with_tile(problem, catalogue[best_index], gpu);
  }

  const std::vector<KernelEstimate> all =
      estimate_all_tiles(problem, gpu, catalogue);
  const auto best = std::min_element(
      all.begin(), all.end(),
      [](const KernelEstimate& a, const KernelEstimate& b) {
        return a.time < b.time;  // strict: ties keep the earlier entry
      });
  record_selection_trail(problem, all,
                         static_cast<std::size_t>(best - all.begin()),
                         recorder);
  return *best;
}

}  // namespace codesign::gemm
