#include "gemmsim/prepared_catalogue.hpp"

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/math_util.hpp"
#include "gemmsim/simulator.hpp"
#include "obs/metrics.hpp"

namespace codesign::gemm {

PreparedCatalogue::PreparedCatalogue(
    const gpu::GpuSpec& gpu, TilePolicy policy,
    const std::vector<gpu::TileConfig>& catalogue)
    : gpu_(&gpu), policy_(policy) {
  gpu.validate();
  CODESIGN_CHECK(!catalogue.empty(), "tile catalogue must not be empty");
  // kFixedLargest models the fixed-tile kernel of Fig 5b: the prepared
  // table degenerates to the single largest tile, so the same scan code
  // serves both policies.
  if (policy == TilePolicy::kFixedLargest) {
    tiles_ = {gpu::largest_tile()};
  } else {
    tiles_ = catalogue;
  }
  const std::size_t n = tiles_.size();
  tm_.reserve(n);
  tn_.reserve(n);
  tk_.reserve(n);
  blocks_per_wave_.reserve(n);
  intrinsic_.reserve(n);
  for (const gpu::TileConfig& tile : tiles_) {
    CODESIGN_CHECK(tile.tm > 0 && tile.tn > 0 && tile.tk > 0,
                   "tile dimensions must be positive");
    tm_.push_back(tile.tm);
    tn_.push_back(tile.tn);
    tk_.push_back(tile.tk);
    blocks_per_wave_.push_back(static_cast<std::int64_t>(gpu.sm_count) *
                               tile.blocks_per_sm);
    intrinsic_.push_back(tile.intrinsic_efficiency);
  }
}

std::size_t PreparedCatalogue::scan(const GemmProblem& problem,
                                    const ProblemTerms& terms,
                                    double* best_time) const {
  // The inner loop of the batched engine: flat-array reads, exact integer
  // quantization (same formulas as tile_quantization/wave_quantization),
  // and the shared tile_timing() core. Ties keep the earlier entry, the
  // scalar min_element contract.
  std::size_t best_index = 0;
  double best = 0.0;
  const std::size_t n = tm_.size();
  for (std::size_t i = 0; i < n; ++i) {
    TileQuantization tile_q;
    tile_q.tiles_m = ceil_div(problem.m, tm_[i]);
    tile_q.tiles_n = ceil_div(problem.n, tn_[i]);
    tile_q.tiles_total = tile_q.tiles_m * tile_q.tiles_n * problem.batch;
    tile_q.padded_m = tile_q.tiles_m * tm_[i];
    tile_q.padded_n = tile_q.tiles_n * tn_[i];
    tile_q.padded_k = round_up(problem.k, tk_[i]);
    const std::int64_t waves =
        ceil_div(tile_q.tiles_total, blocks_per_wave_[i]);
    const double wave_efficiency =
        static_cast<double>(tile_q.tiles_total) /
        static_cast<double>(waves * blocks_per_wave_[i]);
    const TileTiming timing =
        tile_timing(tile_q, wave_efficiency, intrinsic_[i], terms);
    if (i == 0 || timing.time < best) {
      best_index = i;
      best = timing.time;
    }
  }
  *best_time = best;
  return best_index;
}

KernelEstimate PreparedCatalogue::estimate_one(
    const GemmProblem& problem) const {
  if (policy_ == TilePolicy::kFixedLargest) {
    return estimate_with_tile(problem, tiles_.front(), *gpu_);
  }
  // Mirror select_kernel: the failpoint fires per selection with the
  // problem hash as its token, so prob:P:seed drills skip the same
  // candidates on the scalar and batched paths.
  CODESIGN_FAILPOINT_T("gemmsim.select_kernel", problem.hash_value());
  problem.validate();
  if (obs::MetricsRegistry::enabled()) {
    // The trail counters the scalar path records per catalogue walk
    // (kBestEffort: cache hit patterns already make them scheduling-
    // dependent).
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("gemmsim.select.computed", {}, obs::Stability::kBestEffort)
        .add();
    reg.counter("gemmsim.select.candidates", {}, obs::Stability::kBestEffort)
        .add(tile_count());
  }
  const ProblemTerms terms = problem_terms(problem, *gpu_);
  double best_time = 0.0;
  const std::size_t best_index = scan(problem, terms, &best_time);
  return estimate_with_tile(problem, tiles_[best_index], *gpu_);
}

double PreparedCatalogue::time_one(const GemmProblem& problem) const {
  if (policy_ == TilePolicy::kFixedLargest) {
    return estimate_with_tile(problem, tiles_.front(), *gpu_).time;
  }
  CODESIGN_FAILPOINT_T("gemmsim.select_kernel", problem.hash_value());
  problem.validate();
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("gemmsim.select.computed", {}, obs::Stability::kBestEffort)
        .add();
    reg.counter("gemmsim.select.candidates", {}, obs::Stability::kBestEffort)
        .add(tile_count());
  }
  const ProblemTerms terms = problem_terms(problem, *gpu_);
  double best_time = 0.0;
  scan(problem, terms, &best_time);
  return best_time;
}

}  // namespace codesign::gemm
