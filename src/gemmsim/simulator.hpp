// simulator.hpp — the public façade of the GEMM performance simulator.
//
// GemmSimulator binds a GPU spec to a tile-selection policy and exposes the
// one-call latency/throughput queries the transformer model, the advisor,
// and every bench binary use. It also exposes the discrete-event backend so
// callers can cross-check the analytical answer by simulation.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gemmsim/estimate_cache.hpp"
#include "gemmsim/flash_attention.hpp"
#include "gemmsim/gemm_problem.hpp"
#include "gemmsim/kernel_model.hpp"
#include "gemmsim/prepared_catalogue.hpp"
#include "gemmsim/sm_scheduler.hpp"
#include "gpuarch/gpu_spec.hpp"

namespace codesign::gemm {

/// How the simulated kernel library picks its thread-block tile.
enum class TilePolicy {
  kAuto,         ///< cuBLASLt-style heuristic over the full catalogue (Fig 5c)
  kFixedLargest  ///< always the 256×128 tile (Fig 5b's fixed-kernel behaviour)
};

class GemmSimulator {
 public:
  explicit GemmSimulator(const gpu::GpuSpec& gpu,
                         TilePolicy policy = TilePolicy::kAuto);

  /// Convenience: look the GPU up by name ("a100", "v100-32gb", ...).
  static GemmSimulator for_gpu(const std::string& gpu_name,
                               TilePolicy policy = TilePolicy::kAuto);

  const gpu::GpuSpec& gpu() const { return *gpu_; }
  TilePolicy policy() const { return policy_; }

  /// Predicted execution of one (batched) GEMM under the active policy.
  KernelEstimate estimate(const GemmProblem& problem) const;

  /// Seconds for one GEMM (shortcut for estimate().time).
  double latency(const GemmProblem& problem) const;

  /// TFLOP/s of useful work (the y-axis of all the paper's figures).
  double throughput_tflops(const GemmProblem& problem) const;

  /// Sum of per-kernel latencies for a kernel sequence (one CUDA stream).
  double sequence_latency(const std::vector<GemmProblem>& problems) const;

  /// Reusable scratch for the batched entry points below. Keep one per
  /// worker thread and pass it to every call — steady-state batch calls
  /// then allocate nothing.
  struct BatchWorkspace {
    std::vector<EstimateCache::Key> keys;
    std::vector<std::uint8_t> hit;
    std::vector<KernelEstimate> estimates;
    std::vector<double> times;
    EstimateCache::BatchScratch scratch;
  };

  /// Batched estimate: fills out[i] with exactly what estimate(problems[i])
  /// returns — bit-identical, any cache state, any thread count. The batch
  /// amortizes the per-call costs of the scalar path: cache probes are
  /// grouped per stripe lock (EstimateCache::lookup_many), misses scan the
  /// precompiled SoA tile tables (PreparedCatalogue), and validation /
  /// metrics / failpoint checks run per batch item without per-call setup.
  /// Divergences from N scalar calls are confined to best-effort
  /// observability: cache hit/miss counter splits, LRU recency order, and
  /// order-dependent (once:/every:) failpoint triggers — see
  /// docs/search_pipeline.md for the contract.
  void estimate_many(std::span<const GemmProblem> problems,
                     std::span<KernelEstimate> out,
                     BatchWorkspace& workspace) const;

  /// Convenience overload with a throwaway workspace.
  void estimate_many(std::span<const GemmProblem> problems,
                     std::span<KernelEstimate> out) const;

  /// Times-only batch: out[i] == estimate(problems[i]).time bit-identically,
  /// but cache hits copy one double instead of a full KernelEstimate. The
  /// hot call of the batched search pipeline. Misses still compute and
  /// insert the full estimate, so cache population matches the scalar path.
  void estimate_times(std::span<const GemmProblem> problems,
                      std::span<double> out, BatchWorkspace& workspace) const;

  /// Batched overload of sequence_latency: sums estimate_times() outputs in
  /// input order — bit-identical to the scalar overload.
  double sequence_latency(std::span<const GemmProblem> problems,
                          BatchWorkspace& workspace) const;

  /// The precompiled tile tables this simulator scans on a cache miss.
  const PreparedCatalogue& prepared() const { return *prepared_; }

  /// Discrete-event cross-check of the analytical estimate.
  DesResult simulate(const GemmProblem& problem,
                     const DesOptions& options = {}) const;

  /// FlashAttention fused-kernel estimate (policy-independent).
  FlashAttentionEstimate estimate_flash(
      const FlashAttentionProblem& problem) const;

  /// Opt in to memoizing estimate() results (off by default). Copies of
  /// this simulator share the cache; results are bit-identical to the
  /// uncached path. Thread-safe (the cache is mutex-striped).
  void enable_cache(const CacheOptions& options = {});

  /// Share an existing cache (e.g. across simulators for several GPUs —
  /// the cache key includes the GPU identity and tile policy). nullptr
  /// disables caching.
  void set_cache(std::shared_ptr<EstimateCache> cache);

  /// The active cache, or nullptr when caching is off.
  const std::shared_ptr<EstimateCache>& cache() const { return cache_; }

 private:
  const gpu::GpuSpec* gpu_;  ///< registry-owned, never null
  TilePolicy policy_;
  std::shared_ptr<EstimateCache> cache_;  ///< null = caching disabled
  /// Built once per (gpu, policy) at construction; copies share it.
  std::shared_ptr<const PreparedCatalogue> prepared_;
};

}  // namespace codesign::gemm
