// simulator.hpp — the public façade of the GEMM performance simulator.
//
// GemmSimulator binds a GPU spec to a tile-selection policy and exposes the
// one-call latency/throughput queries the transformer model, the advisor,
// and every bench binary use. It also exposes the discrete-event backend so
// callers can cross-check the analytical answer by simulation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gemmsim/estimate_cache.hpp"
#include "gemmsim/flash_attention.hpp"
#include "gemmsim/gemm_problem.hpp"
#include "gemmsim/kernel_model.hpp"
#include "gemmsim/sm_scheduler.hpp"
#include "gpuarch/gpu_spec.hpp"

namespace codesign::gemm {

/// How the simulated kernel library picks its thread-block tile.
enum class TilePolicy {
  kAuto,         ///< cuBLASLt-style heuristic over the full catalogue (Fig 5c)
  kFixedLargest  ///< always the 256×128 tile (Fig 5b's fixed-kernel behaviour)
};

class GemmSimulator {
 public:
  explicit GemmSimulator(const gpu::GpuSpec& gpu,
                         TilePolicy policy = TilePolicy::kAuto);

  /// Convenience: look the GPU up by name ("a100", "v100-32gb", ...).
  static GemmSimulator for_gpu(const std::string& gpu_name,
                               TilePolicy policy = TilePolicy::kAuto);

  const gpu::GpuSpec& gpu() const { return *gpu_; }
  TilePolicy policy() const { return policy_; }

  /// Predicted execution of one (batched) GEMM under the active policy.
  KernelEstimate estimate(const GemmProblem& problem) const;

  /// Seconds for one GEMM (shortcut for estimate().time).
  double latency(const GemmProblem& problem) const;

  /// TFLOP/s of useful work (the y-axis of all the paper's figures).
  double throughput_tflops(const GemmProblem& problem) const;

  /// Sum of per-kernel latencies for a kernel sequence (one CUDA stream).
  double sequence_latency(const std::vector<GemmProblem>& problems) const;

  /// Discrete-event cross-check of the analytical estimate.
  DesResult simulate(const GemmProblem& problem,
                     const DesOptions& options = {}) const;

  /// FlashAttention fused-kernel estimate (policy-independent).
  FlashAttentionEstimate estimate_flash(
      const FlashAttentionProblem& problem) const;

  /// Opt in to memoizing estimate() results (off by default). Copies of
  /// this simulator share the cache; results are bit-identical to the
  /// uncached path. Thread-safe (the cache is mutex-striped).
  void enable_cache(const CacheOptions& options = {});

  /// Share an existing cache (e.g. across simulators for several GPUs —
  /// the cache key includes the GPU identity and tile policy). nullptr
  /// disables caching.
  void set_cache(std::shared_ptr<EstimateCache> cache);

  /// The active cache, or nullptr when caching is off.
  const std::shared_ptr<EstimateCache>& cache() const { return cache_; }

 private:
  const gpu::GpuSpec* gpu_;  ///< registry-owned, never null
  TilePolicy policy_;
  std::shared_ptr<EstimateCache> cache_;  ///< null = caching disabled
};

}  // namespace codesign::gemm
