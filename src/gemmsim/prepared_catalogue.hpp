// prepared_catalogue.hpp — the tile catalogue precompiled for batch speed.
//
// The batched estimation engine (GemmSimulator::estimate_many) exists to
// sweep enormous (problem, tile, GPU) grids: a design-space search touches
// 10^5+ candidate tuples, and the scalar path's per-call costs — a fresh
// std::vector<KernelEstimate> per catalogue walk, the alignment model
// re-evaluated per tile, the GpuSpec re-dereferenced per field — dominate
// the arithmetic. A PreparedCatalogue flattens one (GpuSpec, TilePolicy)
// pair into structure-of-arrays lookup tables (tile dims, intrinsic
// efficiencies, wave constants) built once and shared by every batch, so
// the inner loop is a branch-light scan over flat arrays with zero
// allocation and zero per-tile model re-derivation.
//
// Determinism contract (docs/search_pipeline.md): estimate_one() is
// bit-identical to the scalar path (select_kernel under kAuto,
// estimate_with_tile(largest_tile) under kFixedLargest). It reuses the
// exact integer quantization formulas and the shared tile_timing() core,
// so every double is produced by the same expression tree the scalar path
// compiles — asserted field-for-field by tests/test_estimate_many.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "gemmsim/kernel_model.hpp"
#include "gpuarch/gpu_spec.hpp"
#include "gpuarch/tile_config.hpp"

namespace codesign::gemm {

enum class TilePolicy;  // defined in simulator.hpp

class PreparedCatalogue {
 public:
  /// Precompile `catalogue` for one (gpu, policy) pair. Under
  /// kFixedLargest the prepared table holds only the single largest tile,
  /// mirroring the scalar policy dispatch. `gpu` must outlive the
  /// catalogue (GpuSpec instances are registry-owned singletons).
  PreparedCatalogue(const gpu::GpuSpec& gpu, TilePolicy policy,
                    const std::vector<gpu::TileConfig>& catalogue =
                        gpu::default_tile_catalogue());

  const gpu::GpuSpec& gpu() const { return *gpu_; }
  TilePolicy policy() const { return policy_; }
  std::size_t tile_count() const { return tm_.size(); }

  /// Full estimate for one problem — bit-identical to the scalar
  /// estimate() path for the same (problem, policy, gpu). Fires the
  /// gemmsim.select_kernel failpoint under kAuto exactly as select_kernel
  /// does, so fault drills land on the same candidates either way.
  KernelEstimate estimate_one(const GemmProblem& problem) const;

  /// Lean twin: just the winning time, no KernelEstimate materialized.
  /// Bit-identical to estimate_one(problem).time.
  double time_one(const GemmProblem& problem) const;

 private:
  /// Scan the flat tables; returns the winning tile index and its time.
  std::size_t scan(const GemmProblem& problem, const ProblemTerms& terms,
                   double* best_time) const;

  const gpu::GpuSpec* gpu_;  ///< registry- or caller-owned, never null
  TilePolicy policy_;

  // Structure-of-arrays tile tables, indexed by catalogue position.
  std::vector<std::int64_t> tm_;
  std::vector<std::int64_t> tn_;
  std::vector<std::int64_t> tk_;
  std::vector<std::int64_t> blocks_per_wave_;  ///< sm_count * blocks_per_sm
  std::vector<double> intrinsic_;
  std::vector<gpu::TileConfig> tiles_;  ///< original entries (winner rebuild)
};

}  // namespace codesign::gemm
