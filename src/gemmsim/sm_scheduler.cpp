#include "gemmsim/sm_scheduler.hpp"

#include <algorithm>
#include <queue>
#include <string>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace codesign::gemm {

namespace {

/// One SM residency slot becoming free at `time`.
struct SlotEvent {
  double time;
  int sm;
  bool operator>(const SlotEvent& other) const { return time > other.time; }
};

}  // namespace

DesResult simulate_kernel(const GemmProblem& problem,
                          const gpu::TileConfig& tile,
                          const gpu::GpuSpec& gpu,
                          const DesOptions& options) {
  CODESIGN_FAILPOINT_T("gemmsim.des.simulate", problem.hash_value());
  // Reuse the analytical per-kernel quantities so block duration is
  // consistent with the closed-form model.
  const KernelEstimate est = estimate_with_tile(problem, tile, gpu);

  DesResult r;
  r.blocks = est.tile_q.tiles_total;
  r.slots = static_cast<std::int64_t>(gpu.sm_count) * tile.blocks_per_sm;
  // A block's nominal duration is its share of the kernel body under full
  // residency: body_time / waves. (Wave count × duration == body time.)
  const double body = std::max(est.compute_time, est.memory_time);
  r.block_duration = body / static_cast<double>(est.wave_q.waves);
  CODESIGN_CHECK(r.block_duration > 0.0, "block duration must be positive");

  Rng rng(options.seed);
  r.sm_busy_time.assign(static_cast<std::size_t>(gpu.sm_count), 0.0);

  // Event-driven dispatch: every slot starts free at t=0; the work
  // distributor hands the next block to the earliest-free slot.
  std::priority_queue<SlotEvent, std::vector<SlotEvent>, std::greater<>> events;
  for (std::int64_t s = 0; s < r.slots; ++s) {
    events.push(SlotEvent{0.0, static_cast<int>(s % gpu.sm_count)});
  }

  // Block dispatch/retire events carry *simulated* timestamps (offset by
  // the profiler's per-op time origin), so a recorded DES timeline is
  // byte-deterministic: the event loop below is sequential and seeded.
  obs::EventRecorder* recorder = obs::EventRecorder::active();
  const double origin_us =
      recorder != nullptr ? obs::EventRecorder::time_origin_us() : 0.0;
  const std::string tile_name = tile.name();

  double makespan = 0.0;
  double total_busy = 0.0;
  for (std::int64_t b = 0; b < r.blocks; ++b) {
    SlotEvent ev = events.top();
    events.pop();
    double duration = r.block_duration;
    if (options.block_noise_fraction > 0.0) {
      const double noise = 1.0 + options.block_noise_fraction * rng.normal();
      duration *= std::max(0.05, noise);
    }
    const double finish = ev.time + duration;
    makespan = std::max(makespan, finish);
    total_busy += duration;
    r.sm_busy_time[static_cast<std::size_t>(ev.sm)] += duration;
    if (recorder != nullptr) {
      obs::TraceEvent block;
      block.name = tile_name;
      block.category = "des";
      block.tid = obs::kTidDesBase + ev.sm;
      block.ts_us = origin_us + ev.time * 1e6;
      block.dur_us = duration * 1e6;
      block.clock = obs::EventClock::kSimulated;
      block.args.emplace_back("block", std::to_string(b));
      recorder->record(std::move(block));
    }
    events.push(SlotEvent{finish, ev.sm});
  }

  r.makespan = makespan;
  r.busy_fraction =
      total_busy / (static_cast<double>(r.slots) * std::max(makespan, 1e-30));
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("gemmsim.des.runs").add();
    reg.counter("gemmsim.des.blocks")
        .add(static_cast<std::uint64_t>(r.blocks));
  }
  return r;
}

double simulate_kernel_sequence(const std::vector<GemmProblem>& problems,
                                const gpu::GpuSpec& gpu,
                                const DesOptions& options) {
  CODESIGN_CHECK(!problems.empty(), "kernel sequence must not be empty");
  double total = 0.0;
  DesOptions opt = options;
  for (const GemmProblem& p : problems) {
    const KernelEstimate best = select_kernel(p, gpu);
    const DesResult r = simulate_kernel(p, best.tile, gpu, opt);
    total += r.makespan + gpu.kernel_launch_overhead;
    // Decorrelate noise across kernels deterministically.
    opt.seed = opt.seed * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return total;
}

}  // namespace codesign::gemm
