// estimate_cache.hpp — a sharded, mutex-striped LRU memo of KernelEstimates.
//
// The design-space searches of the advisor evaluate thousands of candidate
// transformer shapes, and identical GEMM problems recur constantly across
// candidates (a head sweep never changes the QKV or projection GEMM, a
// hidden sweep re-visits the same attention BMMs, the joint grid repeats
// both). select_kernel() walks the whole tile catalogue per call, so
// memoizing (problem, policy, GPU) → KernelEstimate turns the dominant cost
// of the search hot path into a hash lookup.
//
// Keying and invalidation rules (see docs/search_pipeline.md):
//   * The key is the full GemmProblem value, the tile-selection policy, and
//     the GPU's identity. GpuSpec instances are registry-owned singletons,
//     so pointer identity is GPU identity; a caller-owned spec may also key
//     the cache as long as it outlives the cache and is not mutated.
//   * The cache never observes GpuSpec mutation — mutate-and-reuse requires
//     an explicit clear().
//   * Entries are bit-exact copies of the uncached computation; a hit
//     returns exactly what a miss would have computed.
//
// Thread safety: shards are independently mutex-protected, so concurrent
// lookups of different shapes stripe across locks. A racing miss on the
// same key computes twice and stores one copy — harmless, still exact.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "gemmsim/kernel_model.hpp"

namespace codesign::obs {
class MetricsRegistry;
struct MetricsSnapshot;
}  // namespace codesign::obs

namespace codesign::gemm {

enum class TilePolicy;  // defined in simulator.hpp

/// Opt-in switch + sizing for the estimate cache.
struct CacheOptions {
  /// Maximum number of cached estimates across all shards.
  std::size_t capacity = 1 << 16;
  /// Number of independent mutex-striped shards (min 1).
  std::size_t shards = 8;
};

/// Aggregate counters across all shards (monotonic except entries).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class EstimateCache {
 public:
  struct Key {
    GemmProblem problem;
    TilePolicy policy;
    const gpu::GpuSpec* gpu = nullptr;
    /// Memoized hash_value(); 0 = not yet computed (a genuine 0 hash just
    /// recomputes — harmless). Excluded from equality. Mutation is safe:
    /// keys are per-call values or shard-lock-protected cache entries.
    mutable std::size_t memo_hash = 0;

    bool operator==(const Key& o) const {
      return problem == o.problem && policy == o.policy && gpu == o.gpu;
    }
    std::size_t hash_value() const noexcept;
  };

  explicit EstimateCache(const CacheOptions& options = {});

  /// Return the cached estimate for `key`, or invoke `compute`, store the
  /// result (evicting the shard's least-recently-used entry when full), and
  /// return it. `compute` runs outside the shard lock.
  KernelEstimate get_or_compute(
      const Key& key, const std::function<KernelEstimate()>& compute);

  /// Test hooks: probe without computing / insert directly.
  bool lookup(const Key& key, KernelEstimate* out);
  void insert(const Key& key, const KernelEstimate& estimate);

  /// Reusable index scratch for the batch API: callers keep one per worker
  /// and pass it to every lookup_many/insert_many call so the batch path
  /// allocates nothing in steady state.
  struct BatchScratch {
    std::vector<std::uint32_t> order;  ///< key indices sorted by shard
  };

  /// Batched probe: for each key, set `hit[i]` and (on a hit) copy the
  /// estimate into `out[i]`. Returns the hit count. Probes are grouped by
  /// shard so each stripe lock is taken at most once per call instead of
  /// once per key; within a shard, LRU touch order follows input order.
  /// Fires the gemmsim.cache.lookup failpoint per key in input order —
  /// exactly the sequence N scalar get_or_compute calls would fire.
  std::size_t lookup_many(std::span<const Key> keys, KernelEstimate* out,
                          std::uint8_t* hit, BatchScratch& scratch);

  /// Times-only twin of lookup_many: copies just `.time` into `out[i]`,
  /// skipping the ~250-byte KernelEstimate copy per hit. Identical hit/miss
  /// accounting, LRU behavior, and failpoint sequence.
  std::size_t lookup_times_many(std::span<const Key> keys, double* out,
                                std::uint8_t* hit, BatchScratch& scratch);

  /// Batched insert of the entries whose `miss[i]` is nonzero (pass the
  /// `hit` array from lookup_many negated, or all-ones to insert
  /// everything). Grouped by shard like lookup_many; keys already present
  /// are left untouched, mirroring get_or_compute's racing-miss semantics.
  void insert_many(std::span<const Key> keys,
                   std::span<const KernelEstimate> estimates,
                   const std::uint8_t* miss, BatchScratch& scratch);

  /// Drop every entry (counters keep accumulating).
  void clear();

  CacheStats stats() const;

  /// Publish the current stats() into `registry` as kBestEffort gauges
  /// ("gemmsim.cache.hits" etc.) — best-effort because racing misses make
  /// the hit/miss split scheduling-dependent. Call at snapshot time; the
  /// cache never touches the registry on its hot path.
  void publish_metrics(obs::MetricsRegistry& registry) const;

  /// Snapshot-local twin of publish_metrics: append the same five gauge
  /// series to `snapshot` without touching any registry. Lets readers (the
  /// serve stats op) report cache state side-effect-free — two back-to-back
  /// reads with no traffic in between produce identical documents.
  void append_metrics(obs::MetricsSnapshot& snapshot) const;

  const CacheOptions& options() const { return options_; }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return k.hash_value();
    }
  };
  struct Entry {
    Key key;
    KernelEstimate estimate;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< most recently used at the front
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const Key& key);
  void insert_locked(Shard& shard, const Key& key,
                     const KernelEstimate& estimate);
  /// Shared core of lookup_many/lookup_times_many; `on_hit(i, estimate)`
  /// copies out whatever the caller wants. Defined in the .cpp — both
  /// instantiations live there.
  template <typename OnHit>
  std::size_t probe_many(std::span<const Key> keys, std::uint8_t* hit,
                         BatchScratch& scratch, OnHit&& on_hit);

  CacheOptions options_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace codesign::gemm
