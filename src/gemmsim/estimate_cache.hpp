// estimate_cache.hpp — a sharded, mutex-striped LRU memo of KernelEstimates.
//
// The design-space searches of the advisor evaluate thousands of candidate
// transformer shapes, and identical GEMM problems recur constantly across
// candidates (a head sweep never changes the QKV or projection GEMM, a
// hidden sweep re-visits the same attention BMMs, the joint grid repeats
// both). select_kernel() walks the whole tile catalogue per call, so
// memoizing (problem, policy, GPU) → KernelEstimate turns the dominant cost
// of the search hot path into a hash lookup.
//
// Keying and invalidation rules (see docs/search_pipeline.md):
//   * The key is the full GemmProblem value, the tile-selection policy, and
//     the GPU's identity. GpuSpec instances are registry-owned singletons,
//     so pointer identity is GPU identity; a caller-owned spec may also key
//     the cache as long as it outlives the cache and is not mutated.
//   * The cache never observes GpuSpec mutation — mutate-and-reuse requires
//     an explicit clear().
//   * Entries are bit-exact copies of the uncached computation; a hit
//     returns exactly what a miss would have computed.
//
// Thread safety: shards are independently mutex-protected, so concurrent
// lookups of different shapes stripe across locks. A racing miss on the
// same key computes twice and stores one copy — harmless, still exact.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "gemmsim/kernel_model.hpp"

namespace codesign::obs {
class MetricsRegistry;
}  // namespace codesign::obs

namespace codesign::gemm {

enum class TilePolicy;  // defined in simulator.hpp

/// Opt-in switch + sizing for the estimate cache.
struct CacheOptions {
  /// Maximum number of cached estimates across all shards.
  std::size_t capacity = 1 << 16;
  /// Number of independent mutex-striped shards (min 1).
  std::size_t shards = 8;
};

/// Aggregate counters across all shards (monotonic except entries).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class EstimateCache {
 public:
  struct Key {
    GemmProblem problem;
    TilePolicy policy;
    const gpu::GpuSpec* gpu = nullptr;

    bool operator==(const Key&) const = default;
    std::size_t hash_value() const noexcept;
  };

  explicit EstimateCache(const CacheOptions& options = {});

  /// Return the cached estimate for `key`, or invoke `compute`, store the
  /// result (evicting the shard's least-recently-used entry when full), and
  /// return it. `compute` runs outside the shard lock.
  KernelEstimate get_or_compute(
      const Key& key, const std::function<KernelEstimate()>& compute);

  /// Test hooks: probe without computing / insert directly.
  bool lookup(const Key& key, KernelEstimate* out);
  void insert(const Key& key, const KernelEstimate& estimate);

  /// Drop every entry (counters keep accumulating).
  void clear();

  CacheStats stats() const;

  /// Publish the current stats() into `registry` as kBestEffort gauges
  /// ("gemmsim.cache.hits" etc.) — best-effort because racing misses make
  /// the hit/miss split scheduling-dependent. Call at snapshot time; the
  /// cache never touches the registry on its hot path.
  void publish_metrics(obs::MetricsRegistry& registry) const;

  const CacheOptions& options() const { return options_; }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return k.hash_value();
    }
  };
  struct Entry {
    Key key;
    KernelEstimate estimate;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< most recently used at the front
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const Key& key);
  void insert_locked(Shard& shard, const Key& key,
                     const KernelEstimate& estimate);

  CacheOptions options_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace codesign::gemm
