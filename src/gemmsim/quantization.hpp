// quantization.hpp — tile and wave quantization math (paper §III-B, §VI-B).
//
// Tile quantization: the output matrix is cut into tm×tn tiles; a partial
// tile occupies a full thread block, so the kernel behaves as if the
// problem were padded up to tile boundaries.
//
// Wave quantization: thread blocks are scheduled in waves of
// (SM count × blocks-per-SM); a 109-block kernel on a 108-SM GPU takes two
// waves, the second almost as long as the first with 1/108 of the useful
// work. The ceil in waves_for() is the saw-tooth of Figs 5b and 9.
#pragma once

#include <cstdint>

#include "gemmsim/gemm_problem.hpp"
#include "gpuarch/gpu_spec.hpp"
#include "gpuarch/tile_config.hpp"

namespace codesign::gemm {

/// Tile-quantization summary for one (problem, tile) pair.
struct TileQuantization {
  std::int64_t tiles_m = 0;       ///< ceil(m / tm)
  std::int64_t tiles_n = 0;       ///< ceil(n / tn)
  std::int64_t tiles_total = 0;   ///< tiles_m * tiles_n * batch
  std::int64_t padded_m = 0;      ///< tiles_m * tm
  std::int64_t padded_n = 0;      ///< tiles_n * tn
  std::int64_t padded_k = 0;      ///< round_up(k, tk)
  /// Fraction of scheduled compute that lands outside the real output:
  /// 1 - (m*n*k) / (padded_m*padded_n*padded_k).
  double wasted_compute_fraction = 0.0;
};

TileQuantization tile_quantization(const GemmProblem& p,
                                   const gpu::TileConfig& tile);

/// Wave-quantization summary.
struct WaveQuantization {
  std::int64_t blocks_per_wave = 0;  ///< sm_count * blocks_per_sm
  std::int64_t waves = 0;            ///< ceil(tiles / blocks_per_wave)
  std::int64_t tail_blocks = 0;      ///< blocks in the final (partial) wave
  /// Useful fraction of the scheduled waves: tiles / (waves * blocks_per_wave).
  double efficiency = 1.0;
};

WaveQuantization wave_quantization(std::int64_t total_tiles,
                                   const gpu::TileConfig& tile,
                                   const gpu::GpuSpec& gpu);

/// Paper §VI-B exact condition: an (X, Y) output has no wave-quantization
/// inefficiency for tile t1×t2 iff
///   ceil(X/t1)*ceil(Y/t2) ≡ 0  or  ceil(X/t2)*ceil(Y/t1) ≡ 0  (mod #SMs)
/// (either orientation of the tile may be used).
bool wave_quantization_free(std::int64_t x, std::int64_t y,
                            const gpu::TileConfig& tile,
                            const gpu::GpuSpec& gpu);

}  // namespace codesign::gemm
