// kernel_model.hpp — the analytical GEMM latency model.
//
// For one (problem, tile) pair the model composes every mechanism the paper
// describes:
//   1. tile quantization   — pad m, n, k up to tile boundaries
//   2. wave quantization   — pad the tile count up to full waves
//   3. tensor-core alignment — scale the math rate by the alignment ladder
//   4. roofline            — take the max of compute and memory time
//   5. launch overhead     — a floor for tiny kernels
//
// select_kernel() mimics the cuBLAS/cuBLASLt heuristic by evaluating the
// whole tile catalogue and returning the fastest predicted configuration;
// restricting the catalogue to the single largest tile models the fixed-
// tile behaviour of Fig 5b, the full catalogue the smoothing of Fig 5c.
#pragma once

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "gemmsim/gemm_problem.hpp"
#include "gemmsim/quantization.hpp"
#include "gemmsim/roofline.hpp"
#include "gpuarch/gpu_spec.hpp"
#include "gpuarch/tensor_core.hpp"
#include "gpuarch/tile_config.hpp"

namespace codesign::gemm {

/// Full prediction for one kernel configuration.
struct KernelEstimate {
  GemmProblem problem;
  gpu::TileConfig tile;
  TileQuantization tile_q;
  WaveQuantization wave_q;
  gpu::AlignmentEfficiency alignment;

  double compute_time = 0.0;  ///< seconds on the math pipeline
  double memory_time = 0.0;   ///< seconds on the DRAM pipeline
  double launch_overhead = 0.0;
  double time = 0.0;          ///< max(compute, memory) + launch
  Bound bound = Bound::kCompute;

  /// Useful-work throughput in FLOP/s (the paper's TFLOP/s axis).
  double flops_per_second() const;
  double tflops() const { return flops_per_second() / 1e12; }
};

/// Fractional attribution of one estimate's predicted time across the five
/// mechanisms the latency model composes. Each field is a fraction of
/// KernelEstimate::time; they are non-negative and sum to 1 (up to rounding
/// in the divisions). The roofline hides the non-limiting pipeline, so a
/// compute-bound estimate attributes 0 to `memory` and vice versa — the
/// breakdown explains the *critical path*, not total resource usage.
///
///   compute     useful math on the compute roof (compute-bound only)
///   memory      useful operand traffic on the DRAM roof (memory-bound only)
///   launch      the kernel-launch floor
///   tile_waste  padding scheduled/moved outside the real output
///               (tile quantization, on whichever roof is limiting)
///   wave_tail   partial-wave occupancy of the machine
///               (wave quantization; compute path only — DRAM traffic does
///               not grow with scheduling waves in this model)
struct BoundBreakdown {
  double compute = 0.0;
  double memory = 0.0;
  double launch = 0.0;
  double tile_waste = 0.0;
  double wave_tail = 0.0;
  Bound bound = Bound::kCompute;  ///< the estimate's limiting mechanism

  bool operator==(const BoundBreakdown&) const = default;
};

/// Derive the attribution from an already-computed estimate. A pure
/// function of the KernelEstimate's stored fields — it re-runs no part of
/// the model, so it costs nothing unless called, and the scalar estimate()
/// path and the estimate_many/PreparedCatalogue path yield bit-identical
/// breakdowns because their KernelEstimates are already bit-identical.
BoundBreakdown bound_breakdown(const KernelEstimate& estimate);

/// Evaluate the model for a specific tile configuration.
KernelEstimate estimate_with_tile(const GemmProblem& problem,
                                  const gpu::TileConfig& tile,
                                  const gpu::GpuSpec& gpu);

/// Problem-level terms of the tile loop — everything in the latency model
/// that does not depend on the candidate tile, computed once per problem
/// and shared across the whole catalogue. The scalar path
/// (estimate_with_tile) and the batched path (PreparedCatalogue) both feed
/// these into tile_timing(), which is what makes their results bit-identical
/// by construction rather than by accident.
struct ProblemTerms {
  gpu::AlignmentEfficiency alignment;
  double math_base = 0.0;   ///< effective_math_rate(alignment, dtype, gpu)
  double bandwidth = 0.0;   ///< effective_bandwidth(alignment, gpu)
  double esize = 0.0;       ///< dtype_size in bytes
  double batch = 0.0;
  double launch_overhead = 0.0;
  bool accumulate_into_c = false;
};

/// Compute the tile-independent terms for one problem (does not validate).
ProblemTerms problem_terms(const GemmProblem& problem, const gpu::GpuSpec& gpu);

/// Per-tile timing outputs of the shared core.
struct TileTiming {
  double compute_time = 0.0;
  double memory_time = 0.0;
  double time = 0.0;
  Bound bound = Bound::kCompute;
};

/// The per-(problem, tile) timing core: padded/scheduled flops, operand
/// traffic, roofline max, launch floor. Inline so the scalar and batched
/// paths compile the *same expression trees* — the determinism contract
/// (docs/search_pipeline.md) requires their doubles to match bit for bit.
inline TileTiming tile_timing(const TileQuantization& tile_q,
                              double wave_efficiency,
                              double intrinsic_efficiency,
                              const ProblemTerms& terms) {
  TileTiming out;
  // --- compute path ------------------------------------------------------
  // Scheduled math includes both quantization paddings: every partial tile
  // executes fully, and every partial wave occupies the whole machine.
  const double padded_flops = 2.0 * static_cast<double>(tile_q.padded_m) *
                              static_cast<double>(tile_q.padded_n) *
                              static_cast<double>(tile_q.padded_k) *
                              terms.batch;
  const double scheduled_flops = padded_flops / wave_efficiency;
  const double math_rate = terms.math_base * intrinsic_efficiency;
  CODESIGN_CHECK(math_rate > 0.0, "math rate must be positive");
  out.compute_time = scheduled_flops / math_rate;

  // --- memory path --------------------------------------------------------
  // Padded operand traffic (partial tiles still load full tiles of A and B).
  const double a_bytes = static_cast<double>(tile_q.padded_m) *
                         static_cast<double>(tile_q.padded_k) * terms.esize;
  const double b_bytes = static_cast<double>(tile_q.padded_k) *
                         static_cast<double>(tile_q.padded_n) * terms.esize;
  const double c_store_bytes = static_cast<double>(tile_q.padded_m) *
                               static_cast<double>(tile_q.padded_n) *
                               terms.esize;
  // beta != 0 reads C as well as writing it.
  const double c_bytes =
      terms.accumulate_into_c ? 2.0 * c_store_bytes : c_store_bytes;
  const double traffic = (a_bytes + b_bytes + c_bytes) * terms.batch;
  out.memory_time = traffic / terms.bandwidth;

  // --- combine -------------------------------------------------------------
  const double body = std::max(out.compute_time, out.memory_time);
  out.time = body + terms.launch_overhead;
  if (terms.launch_overhead > body) {
    out.bound = Bound::kLaunch;
  } else {
    out.bound = out.compute_time >= out.memory_time ? Bound::kCompute
                                                    : Bound::kMemory;
  }
  return out;
}

/// Evaluate every tile in `catalogue` and return the fastest. Deterministic:
/// ties resolve to the earlier catalogue entry.
KernelEstimate select_kernel(
    const GemmProblem& problem, const gpu::GpuSpec& gpu,
    const std::vector<gpu::TileConfig>& catalogue = gpu::default_tile_catalogue());

/// All candidate estimates (for introspection / ablation benches).
std::vector<KernelEstimate> estimate_all_tiles(
    const GemmProblem& problem, const gpu::GpuSpec& gpu,
    const std::vector<gpu::TileConfig>& catalogue = gpu::default_tile_catalogue());

}  // namespace codesign::gemm
