// kernel_model.hpp — the analytical GEMM latency model.
//
// For one (problem, tile) pair the model composes every mechanism the paper
// describes:
//   1. tile quantization   — pad m, n, k up to tile boundaries
//   2. wave quantization   — pad the tile count up to full waves
//   3. tensor-core alignment — scale the math rate by the alignment ladder
//   4. roofline            — take the max of compute and memory time
//   5. launch overhead     — a floor for tiny kernels
//
// select_kernel() mimics the cuBLAS/cuBLASLt heuristic by evaluating the
// whole tile catalogue and returning the fastest predicted configuration;
// restricting the catalogue to the single largest tile models the fixed-
// tile behaviour of Fig 5b, the full catalogue the smoothing of Fig 5c.
#pragma once

#include <vector>

#include "gemmsim/gemm_problem.hpp"
#include "gemmsim/quantization.hpp"
#include "gemmsim/roofline.hpp"
#include "gpuarch/gpu_spec.hpp"
#include "gpuarch/tensor_core.hpp"
#include "gpuarch/tile_config.hpp"

namespace codesign::gemm {

/// Full prediction for one kernel configuration.
struct KernelEstimate {
  GemmProblem problem;
  gpu::TileConfig tile;
  TileQuantization tile_q;
  WaveQuantization wave_q;
  gpu::AlignmentEfficiency alignment;

  double compute_time = 0.0;  ///< seconds on the math pipeline
  double memory_time = 0.0;   ///< seconds on the DRAM pipeline
  double launch_overhead = 0.0;
  double time = 0.0;          ///< max(compute, memory) + launch
  Bound bound = Bound::kCompute;

  /// Useful-work throughput in FLOP/s (the paper's TFLOP/s axis).
  double flops_per_second() const;
  double tflops() const { return flops_per_second() / 1e12; }
};

/// Evaluate the model for a specific tile configuration.
KernelEstimate estimate_with_tile(const GemmProblem& problem,
                                  const gpu::TileConfig& tile,
                                  const gpu::GpuSpec& gpu);

/// Evaluate every tile in `catalogue` and return the fastest. Deterministic:
/// ties resolve to the earlier catalogue entry.
KernelEstimate select_kernel(
    const GemmProblem& problem, const gpu::GpuSpec& gpu,
    const std::vector<gpu::TileConfig>& catalogue = gpu::default_tile_catalogue());

/// All candidate estimates (for introspection / ablation benches).
std::vector<KernelEstimate> estimate_all_tiles(
    const GemmProblem& problem, const gpu::GpuSpec& gpu,
    const std::vector<gpu::TileConfig>& catalogue = gpu::default_tile_catalogue());

}  // namespace codesign::gemm
