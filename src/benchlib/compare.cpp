#include "benchlib/compare.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace codesign::benchlib {

const char* verdict_name(CaseVerdict v) {
  switch (v) {
    case CaseVerdict::kPass: return "ok";
    case CaseVerdict::kFaster: return "FASTER";
    case CaseVerdict::kRegression: return "REGRESSION";
    case CaseVerdict::kDataMismatch: return "DATA MISMATCH";
    case CaseVerdict::kMissingCase: return "MISSING";
    case CaseVerdict::kNewCase: return "new";
  }
  return "?";
}

namespace {

double resolved_threshold(const CaseStats& base, const CaseStats& cand,
                          const CompareOptions& opt) {
  double thr = std::max(opt.min_frac,
                        std::max(base.threshold_frac, cand.threshold_frac));
  if (base.median_ms > 0.0) {
    const double noise = opt.mad_factor *
                         std::max(base.mad_ms, cand.mad_ms) / base.median_ms;
    thr = std::max(thr, noise);
  }
  return thr;
}

}  // namespace

CompareResult compare_reports(const BenchReport& baseline,
                              const BenchReport& candidate,
                              const CompareOptions& options) {
  CompareResult result;

  if (!baseline.run.gpu.empty() && baseline.run.gpu != candidate.run.gpu) {
    result.warnings.push_back("simulated GPU differs (baseline " +
                              baseline.run.gpu + ", candidate " +
                              candidate.run.gpu + ")");
  }
  if (!baseline.run.policy.empty() &&
      baseline.run.policy != candidate.run.policy) {
    result.warnings.push_back("tile policy differs (baseline " +
                              baseline.run.policy + ", candidate " +
                              candidate.run.policy + ")");
  }
  if (!(baseline.host == candidate.host)) {
    result.warnings.push_back(
        "host/build fingerprint differs — wall-clock deltas are only "
        "indicative (baseline " + baseline.host.compiler + "/" +
        baseline.host.build_type + ", candidate " + candidate.host.compiler +
        "/" + candidate.host.build_type + ")");
  }

  for (const CaseStats& base : baseline.cases) {
    CaseDelta d;
    d.name = base.name;
    d.base_median_ms = base.median_ms;
    const CaseStats* cand = candidate.find_case(base.name);
    if (cand == nullptr) {
      d.verdict = CaseVerdict::kMissingCase;
      ++result.missing;
      result.deltas.push_back(std::move(d));
      continue;
    }
    d.cand_median_ms = cand->median_ms;
    d.threshold_frac = resolved_threshold(base, *cand, options);
    d.delta_frac = base.median_ms > 0.0
                       ? (cand->median_ms - base.median_ms) / base.median_ms
                       : 0.0;
    const bool data_bad =
        options.check_data &&
        (base.checksum != cand->checksum || !base.checksum_stable ||
         !cand->checksum_stable);
    if (data_bad) {
      d.verdict = CaseVerdict::kDataMismatch;
      ++result.data_mismatches;
    } else if (d.delta_frac > d.threshold_frac) {
      d.verdict = CaseVerdict::kRegression;
      ++result.regressions;
    } else if (d.delta_frac < -d.threshold_frac) {
      d.verdict = CaseVerdict::kFaster;
      ++result.faster;
    }
    result.deltas.push_back(std::move(d));
  }

  for (const CaseStats& cand : candidate.cases) {
    if (baseline.find_case(cand.name) != nullptr) continue;
    CaseDelta d;
    d.name = cand.name;
    d.cand_median_ms = cand.median_ms;
    d.verdict = CaseVerdict::kNewCase;
    result.deltas.push_back(std::move(d));
  }

  std::sort(result.deltas.begin(), result.deltas.end(),
            [](const CaseDelta& a, const CaseDelta& b) {
              return a.name < b.name;
            });
  return result;
}

TableWriter delta_table(const CompareResult& result) {
  TableWriter t({"case", "baseline", "candidate", "delta", "threshold",
                 "verdict"});
  for (const CaseDelta& d : result.deltas) {
    const bool compared = d.verdict != CaseVerdict::kMissingCase &&
                          d.verdict != CaseVerdict::kNewCase;
    t.new_row()
        .cell(d.name)
        .cell(d.verdict == CaseVerdict::kNewCase
                  ? "-"
                  : human_time(d.base_median_ms / 1e3))
        .cell(d.verdict == CaseVerdict::kMissingCase
                  ? "-"
                  : human_time(d.cand_median_ms / 1e3))
        .cell(compared ? str_format("%+.1f%%", 100.0 * d.delta_frac)
                       : std::string("-"))
        .cell(compared ? str_format("±%.1f%%", 100.0 * d.threshold_frac)
                       : std::string("-"))
        .cell(verdict_name(d.verdict));
  }
  return t;
}

}  // namespace codesign::benchlib
