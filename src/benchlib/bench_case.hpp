// bench_case.hpp — the unit of work the continuous benchmark harness runs.
//
// Every binary in bench/ registers one or more named cases (see
// benchlib/registry.hpp); `codesign-bench` lists, filters, times and
// compares them. A case is a deterministic simulated-work function: it
// reads a GemmSimulator/GpuSpec from its CaseContext, performs the sweep
// the figure or subsystem is about, and folds every number it produces
// into the context's checksum. Wall time is the measurement; the checksum
// is the control — it must be byte-identical across repeats, thread
// counts and machines with the same FP behavior, so `codesign-bench
// compare` can tell "got slower" apart from "computes something else".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gemmsim/simulator.hpp"
#include "gpuarch/gpu_spec.hpp"

namespace codesign::benchlib {

/// The suite tags a case may carry (docs/BENCHMARKS.md):
///   smoke — fast representative subset; the check.sh perf gate
///   fig   — paper-figure reproductions (bench_fig*)
///   ext   — extensions and case studies (bench_ext*, bench_case*)
///   perf  — throughput trajectories of this repo's own hot paths
inline constexpr const char* kSuiteSmoke = "smoke";
inline constexpr const char* kSuiteFig = "fig";
inline constexpr const char* kSuiteExt = "ext";
inline constexpr const char* kSuitePerf = "perf";

bool is_known_suite(const std::string& tag);

/// FNV-1a fold of a double's canonicalized bit pattern into a running
/// checksum (-0.0 folds as +0.0 so sign-of-zero noise cannot flip it).
std::uint64_t checksum_fold(std::uint64_t acc, double v);
inline constexpr std::uint64_t kChecksumSeed = 0xcbf29ce484222325ull;

/// Per-execution state handed to a case body: the simulator to measure
/// and the checksum accumulator. A fresh context is built for every
/// repeat so cache warmth or registry state cannot leak between runs.
class CaseContext {
 public:
  CaseContext(const gpu::GpuSpec& g, gemm::TilePolicy policy)
      : gpu_(&g), sim_(g, policy) {}

  const gpu::GpuSpec& gpu() const { return *gpu_; }
  const gemm::GemmSimulator& sim() const { return sim_; }

  /// Fold a produced value into the data checksum. Call this on every
  /// quantity the case computes that the figure/table would have printed.
  void consume(double v) { checksum_ = checksum_fold(checksum_, v); }
  void consume(std::int64_t v) { consume(static_cast<double>(v)); }

  std::uint64_t checksum() const { return checksum_; }

 private:
  const gpu::GpuSpec* gpu_;
  gemm::GemmSimulator sim_;
  std::uint64_t checksum_ = kChecksumSeed;
};

/// One registered benchmark case.
struct BenchCase {
  std::string name;         ///< unique id, e.g. "fig05.fine_sweep"
  std::string bench;        ///< owning binary, e.g. "bench_fig05_gemm_sweep"
  std::string description;  ///< one line for `codesign-bench list`
  std::vector<std::string> suites;  ///< subset of smoke/fig/ext/perf
  std::function<void(CaseContext&)> fn;
  /// Per-case regression threshold override for `compare` (fraction of the
  /// baseline median; 0 = use the compare invocation's defaults). Raise it
  /// for cases whose wall time is too small to gate tightly.
  double threshold_frac = 0.0;
};

}  // namespace codesign::benchlib
