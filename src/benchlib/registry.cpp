#include "benchlib/registry.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace codesign::benchlib {

bool is_known_suite(const std::string& tag) {
  return tag == kSuiteSmoke || tag == kSuiteFig || tag == kSuiteExt ||
         tag == kSuitePerf;
}

std::uint64_t checksum_fold(std::uint64_t acc, double v) {
  if (v == 0.0) v = 0.0;  // -0.0 == 0.0, so this canonicalizes the sign bit
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int byte = 0; byte < 8; ++byte) {
    acc ^= (bits >> (8 * byte)) & 0xffu;
    acc *= 0x100000001b3ull;  // FNV-1a prime
  }
  return acc;
}

void BenchRegistry::add(BenchCase c) {
  CODESIGN_CHECK(!c.name.empty(), "bench case has no name");
  const std::size_t dot = c.name.find('.');
  CODESIGN_CHECK(dot != std::string::npos && dot > 0 && dot + 1 < c.name.size(),
                 "bench case name '" + c.name +
                     "' must look like '<group>.<case>'");
  CODESIGN_CHECK(static_cast<bool>(c.fn),
                 "bench case '" + c.name + "' has no body");
  CODESIGN_CHECK(!c.suites.empty(),
                 "bench case '" + c.name + "' has no suite tags");
  for (const std::string& s : c.suites) {
    CODESIGN_CHECK(is_known_suite(s), "bench case '" + c.name +
                                          "' has unknown suite tag '" + s +
                                          "'");
  }
  CODESIGN_CHECK(find(c.name) == nullptr,
                 "duplicate bench case name '" + c.name + "'");
  cases_.push_back(std::move(c));
}

std::vector<const BenchCase*> BenchRegistry::select(
    const std::string& suite, const std::string& filter) const {
  std::vector<const BenchCase*> out;
  for (const BenchCase& c : cases_) {
    if (!suite.empty() &&
        std::find(c.suites.begin(), c.suites.end(), suite) == c.suites.end()) {
      continue;
    }
    if (!filter.empty() && c.name.find(filter) == std::string::npos &&
        c.bench.find(filter) == std::string::npos) {
      continue;
    }
    out.push_back(&c);
  }
  std::sort(out.begin(), out.end(),
            [](const BenchCase* a, const BenchCase* b) {
              return a->name < b->name;
            });
  return out;
}

const BenchCase* BenchRegistry::find(std::string_view name) const {
  for (const BenchCase& c : cases_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

BenchRegistry& BenchRegistry::global() {
  static BenchRegistry registry;
  return registry;
}

}  // namespace codesign::benchlib
