#include "benchlib/bench_report.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"

namespace codesign::benchlib {

HostFingerprint HostFingerprint::current() {
  HostFingerprint h;
#if defined(__clang__)
  h.compiler = str_format("clang %d.%d.%d", __clang_major__, __clang_minor__,
                          __clang_patchlevel__);
#elif defined(__GNUC__)
  h.compiler = str_format("gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__,
                          __GNUC_PATCHLEVEL__);
#else
  h.compiler = "unknown";
#endif
#if defined(NDEBUG)
  h.build_type = "optimized";
#else
  h.build_type = "debug-assertions";
#endif
#if defined(__linux__)
  h.platform = "linux";
#elif defined(__APPLE__)
  h.platform = "macos";
#else
  h.platform = "other";
#endif
  h.pointer_bits = static_cast<int>(8 * sizeof(void*));
  return h;
}

namespace {

void append_case(json::Writer& w, const CaseStats& c) {
  w.begin_object();
  w.member("name", c.name);
  w.member("bench", c.bench);
  w.key("suites").begin_array();
  for (const std::string& s : c.suites) w.value(s);
  w.end_array();
  w.member("threshold_frac", c.threshold_frac);
  w.key("samples_ms").begin_array();
  for (const double s : c.samples_ms) w.value(s);
  w.end_array();
  w.member("mean_ms", c.mean_ms);
  w.member("median_ms", c.median_ms);
  w.member("mad_ms", c.mad_ms);
  w.member("min_ms", c.min_ms);
  w.member("max_ms", c.max_ms);
  w.member("p50_ms", c.p50_ms);
  w.member("p95_ms", c.p95_ms);
  w.member("outliers", c.outliers);
  w.member("checksum", str_format("%016llx",
                                  static_cast<unsigned long long>(c.checksum)));
  w.member("checksum_stable", c.checksum_stable);
  w.end_object();
}

CaseStats parse_case(const json::Value& v) {
  CaseStats c;
  c.name = v.at("name").as_string();
  c.bench = v.string_or("bench", "");
  for (const json::Value& s : v.at("suites").as_array()) {
    c.suites.push_back(s.as_string());
  }
  c.threshold_frac = v.number_or("threshold_frac", 0.0);
  for (const json::Value& s : v.at("samples_ms").as_array()) {
    c.samples_ms.push_back(s.as_number());
  }
  c.mean_ms = v.number_or("mean_ms", 0.0);
  c.median_ms = v.at("median_ms").as_number();
  c.mad_ms = v.at("mad_ms").as_number();
  c.min_ms = v.number_or("min_ms", 0.0);
  c.max_ms = v.number_or("max_ms", 0.0);
  c.p50_ms = v.number_or("p50_ms", 0.0);
  c.p95_ms = v.number_or("p95_ms", 0.0);
  c.outliers = static_cast<int>(v.number_or("outliers", 0.0));
  const std::string hex = v.at("checksum").as_string();
  c.checksum = std::stoull(hex, nullptr, 16);
  c.checksum_stable = v.bool_or("checksum_stable", true);
  return c;
}

obs::MetricsSnapshot parse_metrics(const json::Value& v) {
  obs::MetricsSnapshot snap;
  for (const json::Value& m : v.at("metrics").as_array()) {
    obs::MetricsSnapshot::Series s;
    s.name = m.at("name").as_string();
    s.labels = m.string_or("labels", "");
    const std::string kind = m.at("kind").as_string();
    if (kind == "counter") {
      s.kind = obs::MetricKind::kCounter;
      s.count = static_cast<std::uint64_t>(m.at("value").as_number());
    } else if (kind == "gauge") {
      s.kind = obs::MetricKind::kGauge;
      s.value = m.at("value").as_number();
    } else if (kind == "histogram") {
      s.kind = obs::MetricKind::kHistogram;
      s.count = static_cast<std::uint64_t>(m.at("count").as_number());
      s.sum = m.number_or("sum", 0.0);
      s.min = m.number_or("min", 0.0);
      s.max = m.number_or("max", 0.0);
      s.p50 = m.number_or("p50", 0.0);
      s.p95 = m.number_or("p95", 0.0);
      s.p99 = m.number_or("p99", 0.0);
      if (const json::Value* buckets = m.get("buckets")) {
        for (const json::Value& b : buckets->as_array()) {
          const auto& pair = b.as_array();
          CODESIGN_CHECK(pair.size() == 2, "metrics bucket is not a pair");
          s.buckets.emplace_back(
              pair[0].as_number(),
              static_cast<std::uint64_t>(pair[1].as_number()));
        }
      }
    } else {
      throw Error("bench report: unknown metric kind '" + kind + "'");
    }
    s.stability = m.string_or("stability", "deterministic") == "best_effort"
                      ? obs::Stability::kBestEffort
                      : obs::Stability::kDeterministic;
    snap.series.push_back(std::move(s));
  }
  return snap;
}

}  // namespace

std::string BenchReport::to_json() const {
  std::vector<const CaseStats*> ordered;
  ordered.reserve(cases.size());
  for (const CaseStats& c : cases) ordered.push_back(&c);
  std::sort(ordered.begin(), ordered.end(),
            [](const CaseStats* a, const CaseStats* b) {
              return a->name < b->name;
            });

  std::ostringstream os;
  json::Writer w(os);
  // Pretty spine, compact leaves — the layout documented in the header.
  w.begin_object(json::Writer::Style::kPretty);
  w.member("schema", kReportSchemaId);
  w.member("version", kReportSchemaVersion);
  w.key("run").begin_object();
  w.member("suite", run.suite);
  w.member("filter", run.filter);
  w.member("gpu", run.gpu);
  w.member("policy", run.policy);
  w.member("warmup", run.warmup);
  w.member("repeats", run.repeats);
  w.member("threads", run.threads);
  w.end_object();
  w.key("host").begin_object();
  w.member("compiler", host.compiler);
  w.member("build_type", host.build_type);
  w.member("platform", host.platform);
  w.member("pointer_bits", host.pointer_bits);
  w.end_object();
  w.key("context").begin_object();
  for (const auto& [k, v] : context) w.member(k, v);
  w.end_object();
  w.key("cases").begin_array(json::Writer::Style::kPretty);
  for (const CaseStats* c : ordered) append_case(w, *c);
  w.end_array();
  w.key("metrics").raw(metrics.to_json());
  w.end_object();
  os << "\n";
  return os.str();
}

BenchReport BenchReport::from_json(std::string_view text) {
  const json::Value doc = json::Value::parse(text);
  const std::string schema = doc.at("schema").as_string();
  if (schema != kReportSchemaId) {
    throw Error("bench report: schema id '" + schema + "' is not '" +
                kReportSchemaId + "'");
  }
  const int version = static_cast<int>(doc.at("version").as_number());
  if (version > kReportSchemaVersion) {
    throw Error(str_format(
        "bench report: version %d is newer than this binary understands (%d)",
        version, kReportSchemaVersion));
  }

  BenchReport r;
  const json::Value& run = doc.at("run");
  r.run.suite = run.string_or("suite", "");
  r.run.filter = run.string_or("filter", "");
  r.run.gpu = run.string_or("gpu", "");
  r.run.policy = run.string_or("policy", "");
  r.run.warmup = static_cast<int>(run.number_or("warmup", 0.0));
  r.run.repeats = static_cast<int>(run.number_or("repeats", 0.0));
  r.run.threads = static_cast<std::size_t>(run.number_or("threads", 1.0));

  if (const json::Value* host = doc.get("host")) {
    r.host.compiler = host->string_or("compiler", "");
    r.host.build_type = host->string_or("build_type", "");
    r.host.platform = host->string_or("platform", "");
    r.host.pointer_bits = static_cast<int>(host->number_or("pointer_bits", 0));
  }
  if (const json::Value* context = doc.get("context")) {
    for (const auto& [k, v] : context->as_object()) {
      r.context[k] = v.as_string();
    }
  }
  for (const json::Value& c : doc.at("cases").as_array()) {
    r.cases.push_back(parse_case(c));
  }
  if (const json::Value* metrics = doc.get("metrics")) {
    r.metrics = parse_metrics(*metrics);
  }
  return r;
}

void BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  CODESIGN_CHECK(out.good(), "cannot open '" + path + "' for writing");
  out << to_json();
  CODESIGN_CHECK(out.good(), "failed writing '" + path + "'");
}

BenchReport BenchReport::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw Error("cannot read bench report '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return from_json(buf.str());
  } catch (const Error& e) {
    throw Error("while reading '" + path + "': " + e.what());
  }
}

const CaseStats* BenchReport::find_case(std::string_view name) const {
  for (const CaseStats& c : cases) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

}  // namespace codesign::benchlib
