#include "benchlib/bench_report.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"

namespace codesign::benchlib {

HostFingerprint HostFingerprint::current() {
  HostFingerprint h;
#if defined(__clang__)
  h.compiler = str_format("clang %d.%d.%d", __clang_major__, __clang_minor__,
                          __clang_patchlevel__);
#elif defined(__GNUC__)
  h.compiler = str_format("gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__,
                          __GNUC_PATCHLEVEL__);
#else
  h.compiler = "unknown";
#endif
#if defined(NDEBUG)
  h.build_type = "optimized";
#else
  h.build_type = "debug-assertions";
#endif
#if defined(__linux__)
  h.platform = "linux";
#elif defined(__APPLE__)
  h.platform = "macos";
#else
  h.platform = "other";
#endif
  h.pointer_bits = static_cast<int>(8 * sizeof(void*));
  return h;
}

namespace {

void append_case(std::ostringstream& os, const CaseStats& c) {
  os << "    {\"name\":\"" << json::escape(c.name) << "\",\"bench\":\""
     << json::escape(c.bench) << "\",\"suites\":[";
  for (std::size_t i = 0; i < c.suites.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json::escape(c.suites[i]) << "\"";
  }
  os << "],\"threshold_frac\":" << json::format_double(c.threshold_frac)
     << ",\"samples_ms\":[";
  for (std::size_t i = 0; i < c.samples_ms.size(); ++i) {
    if (i > 0) os << ",";
    os << json::format_double(c.samples_ms[i]);
  }
  os << "],\"mean_ms\":" << json::format_double(c.mean_ms)
     << ",\"median_ms\":" << json::format_double(c.median_ms)
     << ",\"mad_ms\":" << json::format_double(c.mad_ms)
     << ",\"min_ms\":" << json::format_double(c.min_ms)
     << ",\"max_ms\":" << json::format_double(c.max_ms)
     << ",\"p50_ms\":" << json::format_double(c.p50_ms)
     << ",\"p95_ms\":" << json::format_double(c.p95_ms)
     << ",\"outliers\":" << c.outliers << ",\"checksum\":\""
     << str_format("%016llx", static_cast<unsigned long long>(c.checksum))
     << "\",\"checksum_stable\":" << (c.checksum_stable ? "true" : "false")
     << "}";
}

CaseStats parse_case(const json::Value& v) {
  CaseStats c;
  c.name = v.at("name").as_string();
  c.bench = v.string_or("bench", "");
  for (const json::Value& s : v.at("suites").as_array()) {
    c.suites.push_back(s.as_string());
  }
  c.threshold_frac = v.number_or("threshold_frac", 0.0);
  for (const json::Value& s : v.at("samples_ms").as_array()) {
    c.samples_ms.push_back(s.as_number());
  }
  c.mean_ms = v.number_or("mean_ms", 0.0);
  c.median_ms = v.at("median_ms").as_number();
  c.mad_ms = v.at("mad_ms").as_number();
  c.min_ms = v.number_or("min_ms", 0.0);
  c.max_ms = v.number_or("max_ms", 0.0);
  c.p50_ms = v.number_or("p50_ms", 0.0);
  c.p95_ms = v.number_or("p95_ms", 0.0);
  c.outliers = static_cast<int>(v.number_or("outliers", 0.0));
  const std::string hex = v.at("checksum").as_string();
  c.checksum = std::stoull(hex, nullptr, 16);
  c.checksum_stable = v.bool_or("checksum_stable", true);
  return c;
}

obs::MetricsSnapshot parse_metrics(const json::Value& v) {
  obs::MetricsSnapshot snap;
  for (const json::Value& m : v.at("metrics").as_array()) {
    obs::MetricsSnapshot::Series s;
    s.name = m.at("name").as_string();
    s.labels = m.string_or("labels", "");
    const std::string kind = m.at("kind").as_string();
    if (kind == "counter") {
      s.kind = obs::MetricKind::kCounter;
      s.count = static_cast<std::uint64_t>(m.at("value").as_number());
    } else if (kind == "gauge") {
      s.kind = obs::MetricKind::kGauge;
      s.value = m.at("value").as_number();
    } else if (kind == "histogram") {
      s.kind = obs::MetricKind::kHistogram;
      s.count = static_cast<std::uint64_t>(m.at("count").as_number());
      s.sum = m.number_or("sum", 0.0);
      s.min = m.number_or("min", 0.0);
      s.max = m.number_or("max", 0.0);
      s.p50 = m.number_or("p50", 0.0);
      s.p95 = m.number_or("p95", 0.0);
      s.p99 = m.number_or("p99", 0.0);
      if (const json::Value* buckets = m.get("buckets")) {
        for (const json::Value& b : buckets->as_array()) {
          const auto& pair = b.as_array();
          CODESIGN_CHECK(pair.size() == 2, "metrics bucket is not a pair");
          s.buckets.emplace_back(
              pair[0].as_number(),
              static_cast<std::uint64_t>(pair[1].as_number()));
        }
      }
    } else {
      throw Error("bench report: unknown metric kind '" + kind + "'");
    }
    s.stability = m.string_or("stability", "deterministic") == "best_effort"
                      ? obs::Stability::kBestEffort
                      : obs::Stability::kDeterministic;
    snap.series.push_back(std::move(s));
  }
  return snap;
}

}  // namespace

std::string BenchReport::to_json() const {
  std::vector<const CaseStats*> ordered;
  ordered.reserve(cases.size());
  for (const CaseStats& c : cases) ordered.push_back(&c);
  std::sort(ordered.begin(), ordered.end(),
            [](const CaseStats* a, const CaseStats* b) {
              return a->name < b->name;
            });

  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kReportSchemaId << "\",\n  \"version\": "
     << kReportSchemaVersion << ",\n";
  os << "  \"run\": {\"suite\":\"" << json::escape(run.suite)
     << "\",\"filter\":\"" << json::escape(run.filter) << "\",\"gpu\":\""
     << json::escape(run.gpu) << "\",\"policy\":\"" << json::escape(run.policy)
     << "\",\"warmup\":" << run.warmup << ",\"repeats\":" << run.repeats
     << ",\"threads\":" << run.threads << "},\n";
  os << "  \"host\": {\"compiler\":\"" << json::escape(host.compiler)
     << "\",\"build_type\":\"" << json::escape(host.build_type)
     << "\",\"platform\":\"" << json::escape(host.platform)
     << "\",\"pointer_bits\":" << host.pointer_bits << "},\n";
  os << "  \"context\": {";
  bool first = true;
  for (const auto& [k, v] : context) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json::escape(k) << "\":\"" << json::escape(v) << "\"";
  }
  os << "},\n  \"cases\": [\n";
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    append_case(os, *ordered[i]);
    if (i + 1 < ordered.size()) os << ",";
    os << "\n";
  }
  os << "  ],\n  \"metrics\": " << metrics.to_json() << "\n}\n";
  return os.str();
}

BenchReport BenchReport::from_json(std::string_view text) {
  const json::Value doc = json::Value::parse(text);
  const std::string schema = doc.at("schema").as_string();
  if (schema != kReportSchemaId) {
    throw Error("bench report: schema id '" + schema + "' is not '" +
                kReportSchemaId + "'");
  }
  const int version = static_cast<int>(doc.at("version").as_number());
  if (version > kReportSchemaVersion) {
    throw Error(str_format(
        "bench report: version %d is newer than this binary understands (%d)",
        version, kReportSchemaVersion));
  }

  BenchReport r;
  const json::Value& run = doc.at("run");
  r.run.suite = run.string_or("suite", "");
  r.run.filter = run.string_or("filter", "");
  r.run.gpu = run.string_or("gpu", "");
  r.run.policy = run.string_or("policy", "");
  r.run.warmup = static_cast<int>(run.number_or("warmup", 0.0));
  r.run.repeats = static_cast<int>(run.number_or("repeats", 0.0));
  r.run.threads = static_cast<std::size_t>(run.number_or("threads", 1.0));

  if (const json::Value* host = doc.get("host")) {
    r.host.compiler = host->string_or("compiler", "");
    r.host.build_type = host->string_or("build_type", "");
    r.host.platform = host->string_or("platform", "");
    r.host.pointer_bits = static_cast<int>(host->number_or("pointer_bits", 0));
  }
  if (const json::Value* context = doc.get("context")) {
    for (const auto& [k, v] : context->as_object()) {
      r.context[k] = v.as_string();
    }
  }
  for (const json::Value& c : doc.at("cases").as_array()) {
    r.cases.push_back(parse_case(c));
  }
  if (const json::Value* metrics = doc.get("metrics")) {
    r.metrics = parse_metrics(*metrics);
  }
  return r;
}

void BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  CODESIGN_CHECK(out.good(), "cannot open '" + path + "' for writing");
  out << to_json();
  CODESIGN_CHECK(out.good(), "failed writing '" + path + "'");
}

BenchReport BenchReport::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw Error("cannot read bench report '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return from_json(buf.str());
  } catch (const Error& e) {
    throw Error("while reading '" + path + "': " + e.what());
  }
}

const CaseStats* BenchReport::find_case(std::string_view name) const {
  for (const CaseStats& c : cases) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

}  // namespace codesign::benchlib
