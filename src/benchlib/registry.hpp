// registry.hpp — the process-wide table of benchmark cases.
//
// Bench binaries define their cases in a registration function (the
// CODESIGN_BENCH_CASES macro in bench/bench_common.hpp names it); the
// `codesign-bench` runner calls bench::register_all_cases() once and then
// lists/filters/runs out of this registry. Registration is explicit —
// no static-initializer tricks — so the case set is deterministic and
// survives static-library dead-stripping.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "benchlib/bench_case.hpp"

namespace codesign::benchlib {

class BenchRegistry {
 public:
  /// Register a case. Throws codesign::Error on a duplicate name, an
  /// empty/unknown suite tag, a missing body, or a name without the
  /// "<group>.<case>" shape.
  void add(BenchCase c);

  std::size_t size() const { return cases_.size(); }
  const std::vector<BenchCase>& cases() const { return cases_; }

  /// Cases whose suite list contains `suite` (empty = all) and whose name
  /// or bench contains `filter` (empty = all), sorted by name so every
  /// run/list/report order is deterministic.
  std::vector<const BenchCase*> select(const std::string& suite,
                                       const std::string& filter = "") const;

  /// Exact-name lookup; nullptr when absent.
  const BenchCase* find(std::string_view name) const;

  /// The registry `codesign-bench` runs from.
  static BenchRegistry& global();

 private:
  std::vector<BenchCase> cases_;
};

}  // namespace codesign::benchlib
