#include "benchlib/timing.hpp"

#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace codesign::benchlib {

void summarize(CaseStats& s, double outlier_mad_factor) {
  if (s.samples_ms.empty()) return;
  s.mean_ms = mean(s.samples_ms);
  s.median_ms = median(s.samples_ms);
  s.mad_ms = median_abs_deviation(s.samples_ms);
  s.min_ms = min_of(s.samples_ms);
  s.max_ms = max_of(s.samples_ms);
  s.p50_ms = percentile(s.samples_ms, 50.0);
  s.p95_ms = percentile(s.samples_ms, 95.0);
  s.outliers = 0;
  const double band = outlier_mad_factor * s.mad_ms;
  for (const double x : s.samples_ms) {
    if (std::fabs(x - s.median_ms) > band) ++s.outliers;
  }
}

CaseStats run_case(const BenchCase& c, const gpu::GpuSpec& g,
                   gemm::TilePolicy policy, const TimingOptions& options) {
  CODESIGN_CHECK(options.repeats >= 1, "timing needs at least one repeat");
  CODESIGN_CHECK(options.warmup >= 0, "negative warmup count");

  CaseStats s;
  s.name = c.name;
  s.bench = c.bench;
  s.suites = c.suites;
  s.threshold_frac = c.threshold_frac;
  s.samples_ms.reserve(static_cast<std::size_t>(options.repeats));

  using Clock = std::chrono::steady_clock;
  bool first = true;
  for (int i = 0; i < options.warmup + options.repeats; ++i) {
    CaseContext ctx(g, policy);
    const auto start = Clock::now();
    c.fn(ctx);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (first) {
      s.checksum = ctx.checksum();
      first = false;
    } else if (ctx.checksum() != s.checksum) {
      // Keep the latest value so a compare against another run still sees
      // *a* checksum, but the instability verdict is what gates.
      s.checksum = ctx.checksum();
      s.checksum_stable = false;
    }
    if (i >= options.warmup) s.samples_ms.push_back(ms);
  }
  summarize(s, options.outlier_mad_factor);
  return s;
}

}  // namespace codesign::benchlib
