// runner.hpp — executes a filtered case set and assembles the report.
//
// This is the library half of the `codesign-bench` tool: select cases
// from a registry, time each one (optionally fanning cases out across a
// ThreadPool — results land in pre-sized slots, so report order and every
// checksum are independent of the thread count), and package the stats
// with run metadata, host fingerprint and the deterministic metrics
// snapshot into a BenchReport.
#pragma once

#include <string>

#include "benchlib/bench_report.hpp"
#include "benchlib/registry.hpp"
#include "benchlib/timing.hpp"

namespace codesign::benchlib {

struct RunOptions {
  std::string suite;    ///< suite tag filter ("" = all cases)
  std::string filter;   ///< substring filter on name/bench ("" = none)
  std::string gpu = "a100";
  std::string policy = "auto";  ///< "auto" or "fixed"
  TimingOptions timing;
  std::size_t threads = 1;  ///< workers timing cases concurrently
};

/// Parse "auto"/"fixed"; throws codesign::Error on anything else.
gemm::TilePolicy parse_tile_policy(const std::string& name);
const char* tile_policy_name(gemm::TilePolicy policy);

/// Run every selected case and build the report. Enables the metrics
/// registry for the duration (restoring the previous state) so the
/// report's metrics section carries the deterministic counters of the
/// simulated work. Throws codesign::Error when no case matches.
BenchReport run_suite(const BenchRegistry& registry, const RunOptions& options);

}  // namespace codesign::benchlib
