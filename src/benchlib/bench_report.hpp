// bench_report.hpp — the versioned, machine-readable perf-trajectory
// record every `codesign-bench run` (and the migrated trajectory benches)
// writes as BENCH_<suite>.json.
//
// Schema id "codesign.bench_report", version 1 (docs/BENCHMARKS.md):
//   {
//     "schema": "codesign.bench_report", "version": 1,
//     "run":  { suite, filter, gpu, policy, warmup, repeats, threads },
//     "host": { compiler, build_type, platform, pointer_bits },
//     "context": { free-form string pairs from the producing bench },
//     "cases": [ { name, bench, suites, threshold_frac, samples_ms,
//                  mean/median/mad/min/max/p50/p95 (ms), outliers,
//                  checksum (hex string), checksum_stable } ],
//     "metrics": <obs::MetricsSnapshot deterministic-only export>
//   }
// Readers must accept unknown keys (forward compatibility) and reject a
// different schema id or a newer major version. All doubles are written
// with shortest-round-trip formatting so identical runs produce
// byte-identical files.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "benchlib/timing.hpp"
#include "obs/metrics.hpp"

namespace codesign::benchlib {

inline constexpr const char* kReportSchemaId = "codesign.bench_report";
inline constexpr int kReportSchemaVersion = 1;

/// What produced the numbers: enough to refuse an apples-to-oranges
/// compare (different GPU/policy) and to annotate the trajectory.
struct RunMeta {
  std::string suite;   ///< suite filter the run used ("" = all cases)
  std::string filter;  ///< substring filter ("" = none)
  std::string gpu;     ///< simulated device id, e.g. "a100-40gb"
  std::string policy;  ///< "auto" or "fixed"
  int warmup = 1;
  int repeats = 5;
  std::size_t threads = 1;  ///< cases timed concurrently on this many workers
};

/// Build fingerprint of the producing binary. Wall-clock timings are only
/// comparable within one (host, build) pair; compare warns on mismatch.
struct HostFingerprint {
  std::string compiler;    ///< e.g. "gcc 12.2.0"
  std::string build_type;  ///< "optimized" or "debug-assertions"
  std::string platform;    ///< e.g. "linux"
  int pointer_bits = 64;

  static HostFingerprint current();
  bool operator==(const HostFingerprint&) const = default;
};

struct BenchReport {
  RunMeta run;
  HostFingerprint host;
  /// Free-form annotations from the producing bench (model name, cache
  /// hit rates, headline speedups). Keys sorted on write.
  std::map<std::string, std::string> context;
  std::vector<CaseStats> cases;  ///< sorted by case name on write
  obs::MetricsSnapshot metrics;  ///< deterministic-only snapshot

  std::string to_json() const;
  /// Parse + validate schema id/version; throws codesign::Error with the
  /// offending key on malformed input.
  static BenchReport from_json(std::string_view text);

  void write_file(const std::string& path) const;
  static BenchReport load_file(const std::string& path);

  const CaseStats* find_case(std::string_view name) const;
};

}  // namespace codesign::benchlib
