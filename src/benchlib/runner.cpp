#include "benchlib/runner.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace codesign::benchlib {

gemm::TilePolicy parse_tile_policy(const std::string& name) {
  if (name == "auto") return gemm::TilePolicy::kAuto;
  if (name == "fixed") return gemm::TilePolicy::kFixedLargest;
  throw Error("--policy must be 'auto' or 'fixed', got '" + name + "'");
}

const char* tile_policy_name(gemm::TilePolicy policy) {
  return policy == gemm::TilePolicy::kAuto ? "auto" : "fixed";
}

BenchReport run_suite(const BenchRegistry& registry,
                      const RunOptions& options) {
  const gpu::GpuSpec& g = gpu::gpu_by_name(options.gpu);
  const gemm::TilePolicy policy = parse_tile_policy(options.policy);

  const std::vector<const BenchCase*> selected =
      registry.select(options.suite, options.filter);
  if (selected.empty()) {
    throw Error("no bench case matches suite '" + options.suite +
                "' filter '" + options.filter + "'");
  }

  BenchReport report;
  report.run.suite = options.suite;
  report.run.filter = options.filter;
  report.run.gpu = g.id;
  report.run.policy = tile_policy_name(policy);
  report.run.warmup = options.timing.warmup;
  report.run.repeats = options.timing.repeats;
  report.run.threads = options.threads == 0 ? 1 : options.threads;
  report.host = HostFingerprint::current();

  const bool metrics_were_enabled = obs::MetricsRegistry::enabled();
  obs::MetricsRegistry::global().reset_values();
  obs::MetricsRegistry::set_enabled(true);

  report.cases.resize(selected.size());
  const auto time_one = [&](std::size_t i) {
    report.cases[i] = run_case(*selected[i], g, policy, options.timing);
  };
  if (report.run.threads > 1) {
    ThreadPool pool(report.run.threads);
    // grain 1: cases are coarse units; hand each to whichever worker
    // frees up first. Slots keep the output order deterministic.
    pool.parallel_for(selected.size(), time_one, /*grain=*/1);
  } else {
    for (std::size_t i = 0; i < selected.size(); ++i) time_one(i);
  }

  report.metrics = obs::MetricsRegistry::global().snapshot(
      {.include_best_effort = false});
  obs::MetricsRegistry::set_enabled(metrics_were_enabled);
  return report;
}

}  // namespace codesign::benchlib
