// timing.hpp — statistically sound case timing for the bench harness.
//
// Replaces the single-shot hand-rolled loops the bench/ binaries used to
// carry: every case runs `warmup` untimed executions followed by
// `repeats` timed ones, and the per-repeat wall times are summarized with
// robust statistics (median + MAD, p50/p95) rather than a lone sample or
// a best-of. The data checksum is asserted across every execution —
// warmups included — so nondeterministic simulated work is flagged even
// when the wall times look plausible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "benchlib/bench_case.hpp"

namespace codesign::benchlib {

struct TimingOptions {
  int warmup = 1;    ///< untimed executions before measuring
  int repeats = 5;   ///< timed executions summarized into the stats
  /// A sample further than this many MADs above/below the median is
  /// counted in CaseStats::outliers (flagged, never silently dropped).
  double outlier_mad_factor = 8.0;
};

/// Per-case result: identity, per-repeat samples, robust summary, and the
/// determinism verdict. This is the unit bench_report serializes.
struct CaseStats {
  std::string name;
  std::string bench;
  std::vector<std::string> suites;
  double threshold_frac = 0.0;  ///< copied from the case (compare override)

  std::vector<double> samples_ms;  ///< one wall-clock sample per repeat
  double mean_ms = 0.0;
  double median_ms = 0.0;
  double mad_ms = 0.0;   ///< median absolute deviation of samples_ms
  double min_ms = 0.0;
  double max_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  int outliers = 0;      ///< samples beyond outlier_mad_factor MADs

  std::uint64_t checksum = 0;   ///< data checksum of the last execution
  bool checksum_stable = true;  ///< identical across every execution?
};

/// Fill the summary fields of `s` from s.samples_ms (no-op when empty).
/// Split out from run_case so fixed-input stats are unit-testable.
void summarize(CaseStats& s, double outlier_mad_factor = 8.0);

/// Execute one case warmup+repeats times against a fresh CaseContext per
/// execution and return its stats. Wall times are best-effort; the
/// checksum fields are the deterministic part.
CaseStats run_case(const BenchCase& c, const gpu::GpuSpec& g,
                   gemm::TilePolicy policy, const TimingOptions& options);

}  // namespace codesign::benchlib
