// compare.hpp — regression gating between two bench reports.
//
// `codesign-bench compare <baseline> <candidate>` decides, per case,
// whether the candidate got slower than noise can explain. The threshold
// is noise-aware: a case must regress by more than
//   max(min_frac, per-case threshold_frac,
//       mad_factor * max(baseline MAD, candidate MAD) / baseline median)
// of the baseline median before it fails the gate, so a jittery 0.2 ms
// case cannot flap CI while a genuine 2x slowdown on any case fails it.
// Data checksums gate separately from wall time: a mismatch means the
// candidate computes different numbers, which is a correctness signal no
// timing threshold should be able to absorb.
#pragma once

#include <string>
#include <vector>

#include "benchlib/bench_report.hpp"
#include "common/table.hpp"

namespace codesign::benchlib {

struct CompareOptions {
  double min_frac = 0.05;   ///< floor on the regression threshold
  double mad_factor = 3.0;  ///< noise band width in MADs
  bool check_data = true;   ///< fail on checksum mismatch / instability
};

enum class CaseVerdict {
  kPass,          ///< within the noise band
  kFaster,        ///< improved beyond the noise band
  kRegression,    ///< slower beyond the noise band
  kDataMismatch,  ///< checksums differ or a run was unstable
  kMissingCase,   ///< present in baseline, absent in candidate
  kNewCase,       ///< absent in baseline (informational)
};

const char* verdict_name(CaseVerdict v);

struct CaseDelta {
  std::string name;
  double base_median_ms = 0.0;
  double cand_median_ms = 0.0;
  double delta_frac = 0.0;      ///< (cand - base) / base
  double threshold_frac = 0.0;  ///< the resolved noise-aware threshold
  CaseVerdict verdict = CaseVerdict::kPass;
};

struct CompareResult {
  std::vector<CaseDelta> deltas;  ///< sorted by case name
  int regressions = 0;
  int data_mismatches = 0;
  int missing = 0;
  int faster = 0;
  /// Wall-clock comparability warnings (host/gpu/policy mismatch); these
  /// do not fail the gate but are printed alongside the table.
  std::vector<std::string> warnings;

  bool ok() const {
    return regressions == 0 && data_mismatches == 0 && missing == 0;
  }
};

CompareResult compare_reports(const BenchReport& baseline,
                              const BenchReport& candidate,
                              const CompareOptions& options = {});

/// Render the per-case delta table `codesign-bench compare` prints.
TableWriter delta_table(const CompareResult& result);

}  // namespace codesign::benchlib
