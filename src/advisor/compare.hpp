// compare.hpp — side-by-side "what if" comparison of two architectures.
//
// The paper's arguments are all of the form "shape A vs shape B at equal
// parameters"; this module packages that comparison across every analysis
// the library offers (parameters, layer/model latency, training step,
// memory, inference) into one structure + rendered table, powering the
// `codesign compare` subcommand.
#pragma once

#include <string>

#include "gemmsim/simulator.hpp"
#include "transformer/config.hpp"

namespace codesign::advisor {

using tfm::TransformerConfig;

/// One metric row of the comparison.
struct ComparisonRow {
  std::string metric;
  std::string value_a;
  std::string value_b;
  double ratio = 1.0;       ///< b relative to a, in "bigger is better" terms
  bool b_better = false;
};

struct Comparison {
  TransformerConfig a;
  TransformerConfig b;
  std::vector<ComparisonRow> rows;

  /// Rendered ASCII table with a verdict line.
  std::string to_string() const;

  /// Count of metrics where B beats A (strictly).
  int b_wins() const;
};

/// Compare B against A on the simulator's GPU. Inference rows are skipped
/// for encoder models.
Comparison compare_configs(const TransformerConfig& a,
                           const TransformerConfig& b,
                           const gemm::GemmSimulator& sim);

}  // namespace codesign::advisor
