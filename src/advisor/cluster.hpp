// cluster.hpp — tensor-parallel / node-topology planning (paper §VII-A).
//
// Summit-class machines have 6 GPUs per node while most clusters have 8;
// the most efficient 3D-parallel layouts set the tensor-parallel degree t
// to the node size, and a model shaped for t=8 (h divisible by 8·64) may be
// infeasible or inefficient at t=6 — and vice versa at deployment time.
// This module enumerates the options and scores them with the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gemmsim/simulator.hpp"
#include "transformer/config.hpp"

namespace codesign::advisor {

using tfm::TransformerConfig;

/// Why a tensor-parallel degree cannot be used with a given architecture.
struct TpFeasibility {
  bool feasible = true;
  std::string reason;  ///< empty when feasible
};

/// Structural feasibility of t-way tensor parallelism: t must divide a, h,
/// d_ff, and v (Megatron-style column/row splits).
TpFeasibility tp_feasibility(const TransformerConfig& config, std::int64_t t);

/// One evaluated tensor-parallel option.
struct TpOption {
  std::int64_t t = 0;
  TpFeasibility feasibility;
  /// Per-GPU single-layer time/throughput at this t (0 when infeasible).
  double layer_time = 0.0;
  double layer_tflops = 0.0;
  /// Largest power of two dividing h/t — the §VII-A alignment casualty.
  std::int64_t hidden_per_tp_pow2 = 0;
  bool rules_pass = false;
};

/// Evaluate every t in `degrees` (e.g. the divisors of the node size).
std::vector<TpOption> analyze_tp_options(const TransformerConfig& config,
                                         const gemm::GemmSimulator& sim,
                                         const std::vector<std::int64_t>& degrees);

/// Deployment matrix: for each node size, whether the model can run with
/// t = node size and how well (the §VII-A "train on 6, deploy on 8" trap).
struct DeploymentCell {
  std::int64_t node_gpus = 0;
  TpOption option;
};

std::vector<DeploymentCell> deployment_matrix(
    const TransformerConfig& config, const gemm::GemmSimulator& sim,
    const std::vector<std::int64_t>& node_sizes = {2, 4, 6, 8});

/// Suggest hidden sizes near `config.hidden_size` that are divisible by
/// lcm(64, every node size in `node_sizes`) — shapes that stay efficient
/// across all listed deployment targets.
std::vector<std::int64_t> portable_hidden_sizes(
    const TransformerConfig& config,
    const std::vector<std::int64_t>& node_sizes, int count = 4);

}  // namespace codesign::advisor
