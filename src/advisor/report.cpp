#include "advisor/report.hpp"

#include <sstream>

#include "advisor/rules.hpp"
#include "advisor/search.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/params.hpp"
#include "transformer/training.hpp"

namespace codesign::advisor {

std::string advise(const TransformerConfig& config,
                   const gemm::GemmSimulator& sim,
                   const ReportOptions& options) {
  config.validate();
  std::ostringstream os;

  os << "=== Shape advisor: " << config.to_string() << " ===\n";
  os << "Target GPU: " << sim.gpu().marketing_name << " ("
     << sim.gpu().sm_count << " SMs, "
     << str_format("%.0f", sim.gpu().tensor_flops_fp16 / 1e12)
     << " TFLOP/s fp16 tensor, "
     << str_format("%.0f", sim.gpu().hbm_bandwidth / 1e9) << " GB/s)\n";
  os << "Parameters: "
     << human_count(static_cast<double>(tfm::exact_param_count(config)))
     << "\n\n";

  // --- per-operator breakdown ------------------------------------------------
  const tfm::LayerLatencyReport layer = tfm::analyze_layer(config, sim);
  TableWriter ops({"operator", "time", "share", "TFLOP/s", "detail"});
  for (const tfm::OpLatency& o : layer.ops) {
    ops.new_row()
        .cell(o.name)
        .cell(human_time(o.time))
        .cell(str_format("%5.1f%%", 100.0 * o.time / layer.total_time))
        .cell(o.tflops, 1)
        .cell(o.detail);
  }
  os << "Single-layer latency: " << human_time(layer.total_time) << " ("
     << str_format("%.1f", layer.throughput_tflops) << " TFLOP/s useful, "
     << str_format("%.1f%%", 100.0 * layer.gemm_fraction)
     << " of time in GEMMs)\n";
  os << ops.render();
  os << '\n';

  // --- rules ------------------------------------------------------------------
  RuleContext ctx;
  ctx.gpu = &sim.gpu();
  ctx.pipeline_stages = options.pipeline_stages;
  TableWriter rules({"rule", "severity", "status", "explanation"});
  for (const RuleResult& r : check_rules(config, ctx)) {
    rules.new_row()
        .cell(rule_name(r.id))
        .cell(severity_name(r.severity))
        .cell(r.passed ? "PASS" : "FAIL")
        .cell(r.message);
  }
  os << "Sizing rules (paper §VI-B):\n" << rules.render() << '\n';

  if (!options.include_suggestions) return os.str();

  // --- suggestions --------------------------------------------------------------
  const auto suggest = [&os, &options](const std::string& title,
                                       const std::vector<ShapeCandidate>& cands) {
    TableWriter t({"candidate", "layer time", "TFLOP/s", "speedup", "params",
                   "rules", "note"});
    int listed = 0;
    for (const ShapeCandidate& c : cands) {
      if (listed >= options.suggestions_per_search) break;
      t.new_row()
          .cell(c.config.name)
          .cell(human_time(c.layer_time))
          .cell(c.layer_tflops, 1)
          .cell(str_format("%.3fx", c.speedup_vs_base))
          .cell(human_count(c.param_count))
          .cell(c.rules_pass ? "PASS" : "FAIL")
          .cell(c.note);
      ++listed;
    }
    os << title << ":\n" << t.render() << '\n';
  };

  SearchOptions search_options;
  search_options.threads = options.search_threads;
  suggest("Head-count alternatives (same h, same parameter count)",
          search_heads(config, sim, search_options));
  suggest("Hidden-size alternatives (±10%, parameter delta bounded)",
          search_hidden(config, sim, /*radius_frac=*/0.1, /*step=*/0,
                        search_options));

  if (config.vocab_size % 64 != 0) {
    os << "Vocabulary: pad v from " << config.vocab_size << " to "
       << pad_vocab(config.vocab_size)
       << " (multiple of 64) for the logit GEMM.\n";
  }

  // --- training feasibility (the quantitative "b as large as possible") ---
  const tfm::MemoryFootprint mem = tfm::training_memory(config);
  tfm::MemoryOptions ckpt;
  ckpt.activation_checkpointing = true;
  os << "\nTraining memory on " << sim.gpu().id << " ("
     << human_bytes(sim.gpu().hbm_capacity) << "): static "
     << human_bytes(mem.weight_bytes + mem.gradient_bytes +
                    mem.optimizer_bytes)
     << " + activations " << human_bytes(mem.activation_bytes) << " at b="
     << config.microbatch << " -> "
     << (mem.fits(sim.gpu()) ? "fits" : "DOES NOT FIT") << ".\n";
  os << "Max microbatch: "
     << tfm::max_microbatch(config, sim.gpu()) << " (plain), "
     << tfm::max_microbatch(config, sim.gpu(), 512, ckpt)
     << " (with activation checkpointing).\n";

  return os.str();
}

}  // namespace codesign::advisor
