#include "advisor/compare.hpp"

#include <sstream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "transformer/inference.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/params.hpp"
#include "transformer/training.hpp"

namespace codesign::advisor {

namespace {

ComparisonRow row(std::string metric, double va, double vb,
                  const std::string& unit_a, const std::string& unit_b,
                  bool bigger_is_better) {
  ComparisonRow r;
  r.metric = std::move(metric);
  r.value_a = unit_a;
  r.value_b = unit_b;
  r.ratio = bigger_is_better ? vb / va : va / vb;
  r.b_better = r.ratio > 1.0 + 1e-12;
  return r;
}

}  // namespace

Comparison compare_configs(const TransformerConfig& a,
                           const TransformerConfig& b,
                           const gemm::GemmSimulator& sim) {
  a.validate();
  b.validate();
  Comparison c;
  c.a = a;
  c.b = b;

  const auto pa = static_cast<double>(tfm::exact_param_count(a));
  const auto pb = static_cast<double>(tfm::exact_param_count(b));
  c.rows.push_back(row("parameters", pa, pb, human_count(pa),
                       human_count(pb), /*bigger=*/false));
  // Parameter count is context, not a contest — mark it neutral.
  c.rows.back().b_better = false;
  c.rows.back().ratio = pb / pa;

  const auto la = tfm::analyze_layer(a, sim);
  const auto lb = tfm::analyze_layer(b, sim);
  c.rows.push_back(row("layer TFLOP/s", la.throughput_tflops,
                       lb.throughput_tflops,
                       str_format("%.1f", la.throughput_tflops),
                       str_format("%.1f", lb.throughput_tflops), true));
  c.rows.push_back(row("layer time", la.total_time, lb.total_time,
                       human_time(la.total_time),
                       human_time(lb.total_time), false));

  const auto ta = tfm::analyze_training_step(a, sim);
  const auto tb = tfm::analyze_training_step(b, sim);
  c.rows.push_back(row("train step", ta.total_time, tb.total_time,
                       human_time(ta.total_time),
                       human_time(tb.total_time), false));
  c.rows.push_back(row("MFU", ta.mfu, tb.mfu,
                       str_format("%.1f%%", 100.0 * ta.mfu),
                       str_format("%.1f%%", 100.0 * tb.mfu), true));

  const auto ma = tfm::training_memory(a);
  const auto mb = tfm::training_memory(b);
  c.rows.push_back(row("train memory", ma.total_bytes, mb.total_bytes,
                       human_bytes(ma.total_bytes),
                       human_bytes(mb.total_bytes), false));

  if (a.kind == tfm::ModelKind::kDecoder &&
      b.kind == tfm::ModelKind::kDecoder) {
    tfm::InferenceWorkload w;
    // Stay within the smaller context.
    w.prompt_len = std::min<std::int64_t>(128, std::min(a.seq_len, b.seq_len) / 2);
    w.generate_tokens = w.prompt_len;
    const auto ia = tfm::estimate_inference(a, sim, w);
    const auto ib = tfm::estimate_inference(b, sim, w);
    c.rows.push_back(row("decode tokens/s", ia.tokens_per_second,
                         ib.tokens_per_second,
                         str_format("%.0f", ia.tokens_per_second),
                         str_format("%.0f", ib.tokens_per_second), true));
  }
  return c;
}

int Comparison::b_wins() const {
  int wins = 0;
  for (const ComparisonRow& r : rows) {
    if (r.b_better) ++wins;
  }
  return wins;
}

std::string Comparison::to_string() const {
  std::ostringstream os;
  os << "A: " << a.to_string() << "\nB: " << b.to_string() << "\n";
  TableWriter t({"metric", "A", "B", "B vs A"});
  for (const ComparisonRow& r : rows) {
    t.new_row()
        .cell(r.metric)
        .cell(r.value_a)
        .cell(r.value_b)
        .cell(str_format("%.3fx%s", r.ratio, r.b_better ? " *" : ""));
  }
  t.write(os);
  os << "(* = B better; 'B vs A' is oriented so > 1 favours B)\n";
  return os.str();
}

}  // namespace codesign::advisor
