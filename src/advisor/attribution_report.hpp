// attribution_report.hpp — the versioned attribution & sensitivity report.
//
// Serializes a model's bottleneck attribution (tfm::attribute_model) and an
// optional per-dimension sensitivity round (advisor::sensitivity_probe)
// into one JSON document through common/json's Writer — the same emitter
// the bench reports and serve responses use. The report contains only
// simulated quantities, so its bytes are identical across thread counts,
// cache states, and machines; check.sh's attribution tier diffs a
// --threads=1 run against a --threads=8 run to pin that down.
//
// docs/OBSERVABILITY.md ("Attribution & sensitivity") documents the schema.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "advisor/search.hpp"
#include "gemmsim/simulator.hpp"
#include "transformer/config.hpp"

namespace codesign::advisor {

inline constexpr const char* kAttributionReportName = "codesign.attribution";
inline constexpr int kAttributionReportVersion = 1;

/// Analyze `config` on `sim` and write the full report. `sensitivity` is
/// embedded verbatim when non-empty (`codesign analyze` and
/// `search --attribution` pass a sensitivity_probe round); callers that
/// skip the probes pass the default empty round and the report carries an
/// empty sensitivity array. `compact` collapses the
/// document to a single line with no trailing newline — required when the
/// report rides inside a serve response, whose framing is one JSON object
/// per line.
void write_attribution_report(
    std::ostream& os, const tfm::TransformerConfig& config,
    const gemm::GemmSimulator& sim,
    const std::vector<DimensionSensitivity>& sensitivity = {},
    bool compact = false);

/// Convenience: the report as a string.
std::string attribution_report(
    const tfm::TransformerConfig& config, const gemm::GemmSimulator& sim,
    const std::vector<DimensionSensitivity>& sensitivity = {},
    bool compact = false);

}  // namespace codesign::advisor
