#include "advisor/cluster.hpp"

#include <algorithm>

#include "advisor/rules.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "transformer/layer_model.hpp"

namespace codesign::advisor {

TpFeasibility tp_feasibility(const TransformerConfig& config, std::int64_t t) {
  CODESIGN_CHECK(t >= 1, "tensor-parallel degree must be >= 1");
  TpFeasibility f;
  auto reject = [&f](std::string why) {
    f.feasible = false;
    if (!f.reason.empty()) f.reason += "; ";
    f.reason += std::move(why);
  };
  if (config.num_heads % t != 0) {
    reject(str_format("t=%lld does not divide a=%lld",
                      static_cast<long long>(t),
                      static_cast<long long>(config.num_heads)));
  }
  if (config.hidden_size % t != 0) {
    reject(str_format("t=%lld does not divide h=%lld",
                      static_cast<long long>(t),
                      static_cast<long long>(config.hidden_size)));
  }
  if (config.d_ff() % t != 0) {
    reject(str_format("t=%lld does not divide d_ff=%lld",
                      static_cast<long long>(t),
                      static_cast<long long>(config.d_ff())));
  }
  if (config.vocab_size % t != 0) {
    reject(str_format("t=%lld does not divide v=%lld",
                      static_cast<long long>(t),
                      static_cast<long long>(config.vocab_size)));
  }
  return f;
}

std::vector<TpOption> analyze_tp_options(
    const TransformerConfig& config, const gemm::GemmSimulator& sim,
    const std::vector<std::int64_t>& degrees) {
  config.validate();
  std::vector<TpOption> out;
  for (const std::int64_t t : degrees) {
    TpOption opt;
    opt.t = t;
    opt.feasibility = tp_feasibility(config, t);
    if (opt.feasibility.feasible) {
      const TransformerConfig cfg = config.with_tensor_parallel(t);
      const tfm::LayerLatencyReport r = tfm::analyze_layer(cfg, sim);
      opt.layer_time = r.total_time;
      opt.layer_tflops = r.throughput_tflops;
      opt.hidden_per_tp_pow2 = static_cast<std::int64_t>(
          largest_pow2_dividing(static_cast<std::uint64_t>(cfg.hidden_per_tp())));
      RuleContext ctx;
      ctx.gpu = &sim.gpu();
      opt.rules_pass = satisfies_performance_rules(cfg, ctx);
    }
    out.push_back(std::move(opt));
  }
  return out;
}

std::vector<DeploymentCell> deployment_matrix(
    const TransformerConfig& config, const gemm::GemmSimulator& sim,
    const std::vector<std::int64_t>& node_sizes) {
  std::vector<DeploymentCell> out;
  const std::vector<TpOption> opts =
      analyze_tp_options(config, sim, node_sizes);
  for (std::size_t i = 0; i < node_sizes.size(); ++i) {
    DeploymentCell cell;
    cell.node_gpus = node_sizes[i];
    cell.option = opts[i];
    out.push_back(std::move(cell));
  }
  return out;
}

std::vector<std::int64_t> portable_hidden_sizes(
    const TransformerConfig& config,
    const std::vector<std::int64_t>& node_sizes, int count) {
  CODESIGN_CHECK(!node_sizes.empty(), "need at least one node size");
  CODESIGN_CHECK(count > 0, "count must be positive");
  // h must be divisible by 64·t for every candidate t so that h/t stays on
  // the full-efficiency granule everywhere.
  std::uint64_t l = 64;
  for (const std::int64_t t : node_sizes) {
    CODESIGN_CHECK(t >= 1, "node sizes must be >= 1");
    l = l / gcd_u64(l, static_cast<std::uint64_t>(t)) *
        static_cast<std::uint64_t>(t);
  }
  const auto step = static_cast<std::int64_t>(l);
  std::vector<std::int64_t> out;
  // Closest multiples bracketing h, alternating below/above.
  const std::int64_t down = round_down(config.hidden_size, step);
  const std::int64_t up = round_up(config.hidden_size, step);
  std::int64_t lo = down;
  std::int64_t hi = up == down ? up + step : up;
  while (static_cast<int>(out.size()) < count) {
    const bool take_hi =
        lo <= 0 || (hi - config.hidden_size) <= (config.hidden_size - lo);
    if (take_hi) {
      out.push_back(hi);
      hi += step;
    } else {
      out.push_back(lo);
      lo -= step;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace codesign::advisor
