#include "advisor/search.hpp"

#include <algorithm>
#include <cmath>

#include "advisor/rules.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/params.hpp"

namespace codesign::advisor {

ShapeCandidate evaluate_candidate(const TransformerConfig& config,
                                  const TransformerConfig& baseline,
                                  const gemm::GemmSimulator& sim) {
  const tfm::LayerLatencyReport base_report =
      tfm::analyze_layer(baseline, sim);
  const tfm::LayerLatencyReport report = tfm::analyze_layer(config, sim);

  ShapeCandidate c;
  c.config = config;
  c.layer_time = report.total_time;
  c.layer_tflops = report.throughput_tflops;
  c.speedup_vs_base = base_report.total_time / report.total_time;
  c.param_count = static_cast<double>(tfm::exact_param_count(config));
  const double base_params =
      static_cast<double>(tfm::exact_param_count(baseline));
  c.param_delta_frac = (c.param_count - base_params) / base_params;
  RuleContext ctx;
  ctx.gpu = &sim.gpu();
  c.rules_pass = satisfies_performance_rules(config, ctx);
  return c;
}

namespace {

void sort_and_trim(std::vector<ShapeCandidate>& cands,
                   const SearchOptions& options) {
  std::sort(cands.begin(), cands.end(),
            [](const ShapeCandidate& a, const ShapeCandidate& b) {
              return a.layer_time < b.layer_time;
            });
  if (cands.size() > options.max_candidates) {
    cands.resize(options.max_candidates);
  }
}

}  // namespace

std::vector<ShapeCandidate> search_heads(const TransformerConfig& base,
                                         const gemm::GemmSimulator& sim,
                                         const SearchOptions& options) {
  base.validate();
  std::vector<ShapeCandidate> cands;
  const std::int64_t h = base.hidden_size;
  for (std::int64_t a = 1; a <= h; ++a) {
    if (h % a != 0) continue;                       // integral head dim
    if (a % base.tensor_parallel != 0) continue;    // t | a
    const std::int64_t head_dim = h / a;
    if (head_dim < 32 || head_dim > 256) continue;  // practical range
    TransformerConfig cfg = base.with_heads(a);
    if (a != base.num_heads) {
      cfg.name = base.name + "-a" + std::to_string(a);
    }
    ShapeCandidate c = evaluate_candidate(cfg, base, sim);
    c.note = str_format("h/a = %lld (pow2 granule %lld)",
                        static_cast<long long>(head_dim),
                        static_cast<long long>(largest_pow2_dividing(
                            static_cast<std::uint64_t>(head_dim))));
    cands.push_back(std::move(c));
  }
  sort_and_trim(cands, options);
  return cands;
}

std::vector<ShapeCandidate> search_hidden(const TransformerConfig& base,
                                          const gemm::GemmSimulator& sim,
                                          double radius_frac,
                                          std::int64_t step,
                                          const SearchOptions& options) {
  base.validate();
  CODESIGN_CHECK(radius_frac > 0.0 && radius_frac < 1.0,
                 "radius_frac must be in (0, 1)");
  if (step <= 0) step = 64 * base.tensor_parallel;

  const std::int64_t h0 = base.hidden_size;
  const auto radius = static_cast<std::int64_t>(
      std::llround(radius_frac * static_cast<double>(h0)));
  const std::int64_t lo = std::max<std::int64_t>(step, h0 - radius);
  const std::int64_t hi = h0 + radius;

  std::vector<ShapeCandidate> cands;
  for (std::int64_t h = round_up(lo, step); h <= hi; h += step) {
    if (h % base.num_heads != 0) continue;  // keep a, require integral h/a
    TransformerConfig cfg = base.with_hidden(h);
    if (h != h0) cfg.name = base.name + "-h" + std::to_string(h);
    ShapeCandidate c = evaluate_candidate(cfg, base, sim);
    if (std::fabs(c.param_delta_frac) > options.max_param_delta_frac &&
        h != h0) {
      continue;
    }
    c.note = str_format("h = %lld (params %+0.2f%%)", static_cast<long long>(h),
                        100.0 * c.param_delta_frac);
    cands.push_back(std::move(c));
  }
  // Always keep the baseline for reference even if trimming.
  sort_and_trim(cands, options);
  return cands;
}

std::vector<MlpCandidate> search_mlp_intermediate(
    const TransformerConfig& base, const gemm::GemmSimulator& sim,
    std::int64_t lo, std::int64_t hi) {
  base.validate();
  CODESIGN_CHECK(lo > 0 && hi >= lo, "bad d_ff search range");

  std::vector<MlpCandidate> out;
  for (std::int64_t ff = lo; ff <= hi; ++ff) {
    if (ff % base.tensor_parallel != 0) continue;
    TransformerConfig cfg = base;
    cfg.mlp_intermediate = ff;
    const gemm::GemmProblem up = tfm::mlp_up_gemm(cfg);
    const gemm::GemmProblem down = tfm::mlp_down_gemm(cfg);
    double time = sim.latency(up) + sim.latency(down);
    double flops = up.flops() + down.flops();
    if (cfg.activation == tfm::Activation::kSwiGlu) {
      time += sim.latency(up);  // the gate twin
      flops += up.flops();
    }
    MlpCandidate c;
    c.d_ff = ff;
    c.mlp_time = time;
    c.mlp_tflops = flops / time / 1e12;
    c.coefficient = static_cast<double>(ff) /
                    static_cast<double>(base.hidden_size);
    out.push_back(c);
  }
  CODESIGN_CHECK(!out.empty(), "d_ff search range produced no candidates");

  std::sort(out.begin(), out.end(),
            [](const MlpCandidate& a, const MlpCandidate& b) {
              return a.mlp_time < b.mlp_time;
            });
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].rank_in_range =
        static_cast<double>(i) / static_cast<double>(out.size() - 1 == 0
                                                         ? 1
                                                         : out.size() - 1);
  }
  return out;
}

double mlp_candidate_percentile(const std::vector<MlpCandidate>& scan,
                                std::int64_t d_ff) {
  for (const MlpCandidate& c : scan) {
    if (c.d_ff == d_ff) return c.rank_in_range;
  }
  throw LookupError("d_ff " + std::to_string(d_ff) + " not in scan results");
}

std::int64_t pad_vocab(std::int64_t v) {
  CODESIGN_CHECK(v > 0, "vocab size must be positive");
  return round_up<std::int64_t>(v, 64);
}

}  // namespace codesign::advisor
