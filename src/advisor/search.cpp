#include "advisor/search.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <utility>

#include "advisor/rules.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/req_scope.hpp"
#include "transformer/flops.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/params.hpp"

namespace codesign::advisor {

namespace {

/// Baseline quantities shared by every candidate of one search. Computed
/// once per search instead of once per candidate — the baseline layer
/// analysis is exactly as expensive as a candidate's, so hoisting it halves
/// the evaluation cost of the whole sweep.
struct BaselineContext {
  double layer_time = 0.0;
  double param_count = 0.0;
};

BaselineContext make_baseline(const TransformerConfig& base,
                              const gemm::GemmSimulator& sim) {
  BaselineContext ctx;
  ctx.layer_time = tfm::layer_total_time(base, sim);
  ctx.param_count = static_cast<double>(tfm::exact_param_count(base));
  return ctx;
}

ShapeCandidate evaluate_against(const TransformerConfig& config,
                                const BaselineContext& base,
                                const gemm::GemmSimulator& sim,
                                tfm::LayerWorkspace& ws) {
  // The batched layer_total_time is the lean twin of analyze_layer:
  // bit-identical total, none of the per-op report the search never reads,
  // and the candidate's GEMM list resolves through one estimate_times()
  // call against `ws` instead of one estimate() per op.
  const double layer_time = tfm::layer_total_time(config, sim, ws);
  ShapeCandidate c;
  c.config = config;
  c.layer_time = layer_time;
  c.layer_tflops = tfm::layer_forward_flops(config) / layer_time / 1e12;
  c.speedup_vs_base = base.layer_time / layer_time;
  c.param_count = static_cast<double>(tfm::exact_param_count(config));
  c.param_delta_frac = (c.param_count - base.param_count) / base.param_count;
  RuleContext ctx;
  ctx.gpu = &sim.gpu();
  c.rules_pass = satisfies_performance_rules(config, ctx);
  return c;
}

/// Deterministic merge: stable sort on (layer_time, config name) — the name
/// tie-break makes the order total, so the ranking cannot depend on
/// evaluation order — then trim. The baseline is always kept for reference:
/// if it fell past the cut it replaces the worst kept candidate.
void sort_and_trim(std::vector<ShapeCandidate>& cands,
                   const TransformerConfig& baseline,
                   const SearchOptions& options) {
  std::stable_sort(cands.begin(), cands.end(),
                   [](const ShapeCandidate& a, const ShapeCandidate& b) {
                     if (a.layer_time != b.layer_time) {
                       return a.layer_time < b.layer_time;
                     }
                     return a.config.name < b.config.name;
                   });
  if (cands.size() <= options.max_candidates) return;

  const auto base_it =
      std::find_if(cands.begin(), cands.end(), [&](const ShapeCandidate& c) {
        return c.config == baseline;
      });
  const bool baseline_trimmed =
      base_it != cands.end() &&
      static_cast<std::size_t>(base_it - cands.begin()) >=
          options.max_candidates;
  ShapeCandidate baseline_copy;
  if (baseline_trimmed) baseline_copy = *base_it;

  cands.resize(options.max_candidates);
  if (baseline_trimmed && !cands.empty()) {
    cands.back() = std::move(baseline_copy);
  }
}

/// Per-slot evaluation state: every generated candidate ends the sweep in
/// exactly one of Done / Skipped / Unreached.
enum class SlotState : std::uint8_t {
  kPending,
  kDone,
  kSkipped,
  kUnreached  ///< never started: the sweep was cancelled first
};

struct SkipInfo {
  std::string reason;
  int attempts = 1;
};

/// Deterministic fault-handling counters, shared across workers.
struct GuardCounters {
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> backoff{0};
};

/// Run one candidate body under the sweep's fault policy:
///   * a tripped CancelToken marks the slot Unreached without running it;
///   * transient faults (fail::InjectedFault::transient()) retry up to
///     FaultPolicy::max_retries times, with deterministic 2^attempt
///     backoff *accounting* (no sleeping — the evaluation is pure);
///   * any remaining exception becomes a typed skip, unless strict mode
///     restores the rethrow (which the ThreadPool fast-fails on).
template <typename Body>
SlotState run_guarded(const SearchOptions& options, GuardCounters& counters,
                      SkipInfo* skip, Body&& body) {
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    return SlotState::kUnreached;
  }
  const int max_retries =
      options.faults.strict ? 0 : std::max(0, options.faults.max_retries);
  for (int attempt = 0;; ++attempt) {
    try {
      body();
      return SlotState::kDone;
    } catch (const fail::InjectedFault& e) {
      if (e.transient() && attempt < max_retries &&
          !(options.cancel != nullptr && options.cancel->cancelled())) {
        counters.retries.fetch_add(1, std::memory_order_relaxed);
        counters.backoff.fetch_add(1ULL << attempt,
                                   std::memory_order_relaxed);
        continue;
      }
      if (options.faults.strict) throw;
      skip->reason = e.what();
      skip->attempts = attempt + 1;
      return SlotState::kSkipped;
    } catch (const std::exception& e) {
      if (options.faults.strict) throw;
      skip->reason = e.what();
      skip->attempts = attempt + 1;
      return SlotState::kSkipped;
    }
  }
}

/// The shared "generate → evaluate in parallel → deterministically merge"
/// pipeline, now with per-candidate fault isolation, cancellation, and
/// checkpoint/resume. `annotate` fills the human-readable note from the
/// evaluated candidate (applied to ranked survivors only, after the trim);
/// `keep` filters (e.g. the hidden sweep's parameter-delta bound). Candidates are evaluated into slots indexed by
/// generation order, so the merged ranking — and the skip record — is
/// byte-identical at any thread count.
SearchOutcome evaluate_pipeline(
    const std::vector<TransformerConfig>& configs,
    const TransformerConfig& baseline, const gemm::GemmSimulator& sim,
    const SearchOptions& options,
    const std::function<void(ShapeCandidate&)>& annotate,
    const std::function<bool(const ShapeCandidate&)>& keep) {
  // Self-profiling of the pipeline stages: wall-clock, so every series here
  // is kBestEffort — the candidate/kept/skip counters below are the only
  // deterministic ones. Everything is gated on the enabled flag so a
  // metrics-off search takes no locks and reads no clocks.
  const bool metrics_on = obs::MetricsRegistry::enabled();

  // The baseline context is evaluated unguarded: without it no candidate
  // can be scored, so a fault here aborts the sweep in any policy.
  const BaselineContext base = make_baseline(baseline, sim);

  SearchOutcome outcome;
  outcome.total_candidates = configs.size();

  std::vector<ShapeCandidate> evaluated(configs.size());
  std::vector<SlotState> state(configs.size(), SlotState::kPending);
  std::vector<SkipInfo> skips(configs.size());
  GuardCounters counters;

  // Resume prefill (sequential, cheap): slots completed by a previous run
  // are filled from the checkpoint — bit-exact, so downstream ranking
  // cannot tell a resumed slot from a fresh one.
  if (options.resume != nullptr) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      if (const CheckpointShapeEntry* e =
              options.resume->shape(configs[i].name)) {
        ShapeCandidate c;
        c.config = configs[i];
        c.layer_time = e->layer_time;
        c.layer_tflops = e->layer_tflops;
        c.speedup_vs_base = e->speedup_vs_base;
        c.param_count = e->param_count;
        c.param_delta_frac = e->param_delta_frac;
        c.rules_pass = e->rules_pass;
        evaluated[i] = std::move(c);
        state[i] = SlotState::kDone;
        ++outcome.resumed;
      } else if (const CheckpointSkipEntry* s =
                     options.resume->skip(configs[i].name)) {
        state[i] = SlotState::kSkipped;
        skips[i] = {s->reason, s->attempts};
        ++outcome.resumed;
      }
    }
  }

  const auto evaluate_one = [&](std::size_t i, tfm::LayerWorkspace& ws) {
    if (state[i] != SlotState::kPending) return;
    SkipInfo skip;
    const SlotState s = run_guarded(options, counters, &skip, [&] {
      CODESIGN_FAILPOINT_T("advisor.search.evaluate",
                           fail::token(configs[i].name));
      ShapeCandidate c = evaluate_against(configs[i], base, sim, ws);
      evaluated[i] = std::move(c);
    });
    state[i] = s;
    if (s == SlotState::kSkipped) {
      skips[i] = std::move(skip);
      if (options.checkpoint != nullptr) {
        options.checkpoint->record_skip(
            configs[i].name, {skips[i].attempts, skips[i].reason});
      }
    } else if (s == SlotState::kDone && options.checkpoint != nullptr) {
      const ShapeCandidate& c = evaluated[i];
      options.checkpoint->record_shape(
          configs[i].name,
          {c.layer_time, c.layer_tflops, c.speedup_vs_base, c.param_count,
           c.param_delta_frac, c.rules_pass});
    }
  };
  {
    obs::ScopedEvent span("search", "evaluate");
    obs::ScopedTimer timer("advisor.search.evaluate_us");
    if (options.threads == 1) {
      tfm::LayerWorkspace ws;
      for (std::size_t i = 0; i < configs.size(); ++i) evaluate_one(i, ws);
    } else {
      // Chunk-level dispatch: each pool task owns one workspace and feeds
      // its whole candidate range through it, so buffer/batch setup is
      // amortized across the chunk. Candidates still evaluate one at a time
      // inside run_guarded — a fault touches exactly one slot, same as the
      // sequential path.
      ThreadPool pool(options.threads);
      pool.parallel_for_ranges(configs.size(),
                               [&](std::size_t begin, std::size_t end) {
                                 tfm::LayerWorkspace ws;
                                 for (std::size_t i = begin; i < end; ++i) {
                                   evaluate_one(i, ws);
                                 }
                               });
    }
    if (timer.active() && !configs.empty()) {
      const double us = timer.elapsed_us();
      if (us > 0.0) {
        obs::MetricsRegistry::global()
            .gauge("advisor.search.candidates_per_sec")
            .update_max(static_cast<double>(configs.size()) * 1e6 / us);
      }
    }
  }

  std::vector<ShapeCandidate> out;
  out.reserve(evaluated.size());
  {
    obs::ScopedEvent span("search", "merge");
    obs::ScopedTimer timer("advisor.search.merge_us");
    for (std::size_t i = 0; i < configs.size(); ++i) {
      switch (state[i]) {
        case SlotState::kDone:
          ++outcome.evaluated;
          if (keep(evaluated[i])) out.push_back(std::move(evaluated[i]));
          break;
        case SlotState::kSkipped:
          outcome.skipped.push_back(
              {configs[i], skips[i].reason, skips[i].attempts});
          break;
        case SlotState::kPending:  // cancelled before its chunk ran
        case SlotState::kUnreached:
          break;
      }
    }
    sort_and_trim(out, baseline, options);
    // Notes are only visible on the ranked survivors, and neither `keep`
    // nor the sort reads them, so the str_format work runs after the trim —
    // O(kept) instead of O(evaluated) — with byte-identical output.
    for (ShapeCandidate& c : out) annotate(c);
  }
  outcome.retries =
      static_cast<std::size_t>(counters.retries.load(std::memory_order_relaxed));
  outcome.backoff_units = counters.backoff.load(std::memory_order_relaxed);
  outcome.truncated = outcome.unreached() > 0 ||
                      (options.cancel != nullptr && options.cancel->cancelled());
  if (options.cancel != nullptr) {
    outcome.cancel_reason = options.cancel->reason();
  }
  if (options.checkpoint != nullptr) options.checkpoint->flush();

  if (metrics_on) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("advisor.search.runs").add();
    reg.counter("advisor.search.candidates").add(configs.size());
    reg.counter("advisor.search.kept").add(out.size());
    reg.counter("advisor.search.skipped").add(outcome.skipped.size());
    reg.counter("advisor.search.retries").add(outcome.retries);
    reg.counter("advisor.search.retry_backoff_units").add(outcome.backoff_units);
    reg.counter("advisor.search.resumed").add(outcome.resumed);
    if (outcome.truncated) {
      // Where the cut lands is wall-clock dependent, so the truncation
      // counters can never be part of the deterministic export.
      reg.counter("advisor.search.truncated", {}, obs::Stability::kBestEffort)
          .add();
      reg.counter("advisor.search.unreached", {}, obs::Stability::kBestEffort)
          .add(outcome.unreached());
    }
  }
  if (auto* rs = obs::RequestScope::current()) {
    rs->search_candidates += outcome.evaluated;
  }
  outcome.ranked = std::move(out);
  return outcome;
}

/// Legal head counts for a given hidden size: a | h, t | a, and a practical
/// head dimension (32 <= h/a <= 256).
std::vector<std::int64_t> legal_head_counts(std::int64_t h,
                                            std::int64_t tensor_parallel) {
  std::vector<std::int64_t> out;
  // For a divisor a of h, 32 <= h/a <= 256 confines a to
  // [ceil(h/256), floor(h/32)], so only that window needs scanning —
  // O(h/32) instead of O(h), same candidates in the same ascending order.
  const std::int64_t lo = std::max<std::int64_t>(1, (h + 255) / 256);
  for (std::int64_t a = lo; a <= h / 32; ++a) {
    if (h % a != 0) continue;
    if (a % tensor_parallel != 0) continue;
    out.push_back(a);
  }
  return out;
}

/// The hidden sizes the ±radius sweep visits (multiples of `step`).
std::vector<std::int64_t> hidden_grid(const TransformerConfig& base,
                                      double radius_frac, std::int64_t step) {
  CODESIGN_CHECK(radius_frac > 0.0 && radius_frac < 1.0,
                 "radius_frac must be in (0, 1)");
  if (step <= 0) step = 64 * base.tensor_parallel;
  const std::int64_t h0 = base.hidden_size;
  const auto radius = static_cast<std::int64_t>(
      std::llround(radius_frac * static_cast<double>(h0)));
  const std::int64_t lo = std::max<std::int64_t>(step, h0 - radius);
  const std::int64_t hi = h0 + radius;
  std::vector<std::int64_t> out;
  for (std::int64_t h = round_up(lo, step); h <= hi; h += step) {
    out.push_back(h);
  }
  return out;
}

/// Fold one probe round into the deterministic `advisor.sensitivity.*`
/// series. The probes run sequentially on the calling thread, so the gauge
/// writes are ordered and the export is byte-identical at any --threads
/// value (gauges must opt in to kDeterministic — their default is
/// best-effort).
void record_sensitivity(const std::vector<DimensionSensitivity>& dims) {
  if (!obs::MetricsRegistry::enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("advisor.sensitivity.rounds").add();
  for (const DimensionSensitivity& s : dims) {
    const std::string labels = "dim=" + s.dimension;
    reg.counter("advisor.sensitivity.probes", labels).add();
    if (!s.probed) {
      reg.counter("advisor.sensitivity.illegal", labels).add();
      continue;
    }
    reg.gauge("advisor.sensitivity.delta_frac", labels,
              obs::Stability::kDeterministic)
        .set(s.delta_frac);
    reg.gauge("advisor.sensitivity.probe_time_s", labels,
              obs::Stability::kDeterministic)
        .set(s.probe_time);
  }
}

}  // namespace

std::vector<DimensionSensitivity> sensitivity_probe(
    const TransformerConfig& base, const gemm::GemmSimulator& sim) {
  base.validate();
  // The objective is the whole-model forward time: it sees the logit GEMM,
  // so the vocab dimension registers (a layer-only objective would not).
  const double f0 = tfm::analyze_model(base, sim).total_time;
  std::vector<DimensionSensitivity> out;

  const auto probe = [&](const char* dimension, double base_value,
                         double probe_value, std::string note,
                         const std::function<double()>& eval) {
    DimensionSensitivity s;
    s.dimension = dimension;
    s.base_value = base_value;
    s.probe_value = probe_value;
    s.base_time = f0;
    s.note = std::move(note);
    try {
      s.probe_time = eval();
      s.delta_frac = (s.probe_time - f0) / f0;
      s.probed = true;
    } catch (const std::exception& e) {
      s.probed = false;
      s.note = std::string("probe failed: ") + e.what();
    }
    out.push_back(std::move(s));
  };
  const auto skip = [&](const char* dimension, double base_value,
                        std::string note) {
    DimensionSensitivity s;
    s.dimension = dimension;
    s.base_value = base_value;
    s.base_time = f0;
    s.note = std::move(note);
    out.push_back(std::move(s));
  };
  const auto model_time = [&sim](const TransformerConfig& cfg) {
    return tfm::analyze_model(cfg, sim).total_time;
  };

  // heads: the nearest legal alternative (a | h, t | a, 32 <= h/a <= 256),
  // preferring the next count up (smaller head dim).
  {
    const std::vector<std::int64_t> legal =
        legal_head_counts(base.hidden_size, base.tensor_parallel);
    std::int64_t pick = 0;
    for (std::int64_t a : legal) {  // ascending
      if (a > base.num_heads) { pick = a; break; }
      if (a < base.num_heads) pick = a;  // best lower neighbour so far
    }
    if (pick == 0) {
      skip("heads", static_cast<double>(base.num_heads),
           "no legal alternative head count");
    } else {
      probe("heads", static_cast<double>(base.num_heads),
            static_cast<double>(pick),
            str_format("a %lld -> %lld",
                       static_cast<long long>(base.num_heads),
                       static_cast<long long>(pick)),
            [&, pick] { return model_time(base.with_heads(pick)); });
    }
  }

  // hidden: one granule step up, rounded to keep a | h (t | a implies
  // t | h' too). d_ff is pinned to the base's resolved width so the probe
  // isolates h — the MLP width has its own scan (search_mlp_intermediate).
  {
    const std::int64_t granule = 64 * base.tensor_parallel;
    const std::int64_t step =
        ((granule + base.num_heads - 1) / base.num_heads) * base.num_heads;
    const std::int64_t h1 = base.hidden_size + step;
    probe("hidden", static_cast<double>(base.hidden_size),
          static_cast<double>(h1),
          str_format("h %lld -> %lld (d_ff pinned at %lld)",
                     static_cast<long long>(base.hidden_size),
                     static_cast<long long>(h1),
                     static_cast<long long>(base.d_ff())),
          [&, h1] {
            TransformerConfig cfg = base;
            cfg.mlp_intermediate = base.d_ff();
            return model_time(cfg.with_hidden(h1));
          });
  }

  // tensor_parallel: double if legal, else halve.
  {
    std::int64_t t1 = 0;
    for (std::int64_t cand : {base.tensor_parallel * 2,
                              base.tensor_parallel / 2}) {
      if (cand < 1) continue;
      TransformerConfig cfg = base.with_tensor_parallel(cand);
      try {
        cfg.validate();
      } catch (const std::exception&) {
        continue;
      }
      t1 = cand;
      break;
    }
    if (t1 == 0) {
      skip("tensor_parallel", static_cast<double>(base.tensor_parallel),
           "no legal alternative tensor-parallel size");
    } else {
      probe("tensor_parallel", static_cast<double>(base.tensor_parallel),
            static_cast<double>(t1),
            str_format("t %lld -> %lld",
                       static_cast<long long>(base.tensor_parallel),
                       static_cast<long long>(t1)),
            [&, t1] { return model_time(base.with_tensor_parallel(t1)); });
    }
  }

  // vocab: one 64-row pad step per tensor-parallel rank keeps t | v.
  {
    const std::int64_t v1 = base.vocab_size + 64 * base.tensor_parallel;
    probe("vocab", static_cast<double>(base.vocab_size),
          static_cast<double>(v1),
          str_format("v %lld -> %lld",
                     static_cast<long long>(base.vocab_size),
                     static_cast<long long>(v1)),
          [&, v1] { return model_time(base.with_vocab(v1)); });
  }

  // tile_policy: the same shape through the other selection policy —
  // kAuto's catalogue smoothing vs kFixedLargest's quantization cliffs.
  {
    const gemm::TilePolicy flipped =
        sim.policy() == gemm::TilePolicy::kAuto
            ? gemm::TilePolicy::kFixedLargest
            : gemm::TilePolicy::kAuto;
    probe("tile_policy", static_cast<double>(static_cast<int>(sim.policy())),
          static_cast<double>(static_cast<int>(flipped)),
          std::string("policy ") +
              (sim.policy() == gemm::TilePolicy::kAuto ? "auto" : "fixed") +
              " -> " +
              (flipped == gemm::TilePolicy::kAuto ? "auto" : "fixed"),
          [&, flipped] {
            const gemm::GemmSimulator alt(sim.gpu(), flipped);
            return tfm::analyze_model(base, alt).total_time;
          });
  }

  return out;
}

const char* search_mode_name(SearchMode mode) {
  switch (mode) {
    case SearchMode::kHeads: return "heads";
    case SearchMode::kHidden: return "hidden";
    case SearchMode::kJoint: return "joint";
  }
  return "unknown";
}

ShapeCandidate evaluate_candidate(const TransformerConfig& config,
                                  const TransformerConfig& baseline,
                                  const gemm::GemmSimulator& sim) {
  tfm::LayerWorkspace ws;
  return evaluate_against(config, make_baseline(baseline, sim), sim, ws);
}

SearchOutcome run_grid_search(const std::vector<TransformerConfig>& configs,
                              const TransformerConfig& baseline,
                              const gemm::GemmSimulator& sim,
                              const SearchOptions& options) {
  baseline.validate();
  const std::function<void(ShapeCandidate&)> annotate =
      [](ShapeCandidate&) {};
  const std::function<bool(const ShapeCandidate&)> keep =
      [](const ShapeCandidate&) { return true; };
  return evaluate_pipeline(configs, baseline, sim, options, annotate, keep);
}

std::string shape_search_fingerprint(SearchMode mode,
                                     const TransformerConfig& base,
                                     const gemm::GemmSimulator& sim,
                                     double radius_frac, std::int64_t step) {
  if (mode == SearchMode::kHeads) {
    radius_frac = 0.0;  // the heads sweep has no grid parameters
    step = 0;
  }
  return str_format("shape mode=%s base=%s gpu=%s policy=%d radius=%a step=%lld",
                    search_mode_name(mode), base.to_string().c_str(),
                    sim.gpu().id.c_str(), static_cast<int>(sim.policy()),
                    radius_frac, static_cast<long long>(step));
}

SearchOutcome run_shape_search(SearchMode mode, const TransformerConfig& base,
                               const gemm::GemmSimulator& sim,
                               double radius_frac, std::int64_t step,
                               const SearchOptions& options) {
  base.validate();
  const std::string fingerprint =
      shape_search_fingerprint(mode, base, sim, radius_frac, step);
  if (options.resume != nullptr &&
      options.resume->fingerprint() != fingerprint) {
    throw ConfigError(
        "cannot resume: checkpoint belongs to a different search (file: '" +
        options.resume->fingerprint() + "', this run: '" + fingerprint + "')");
  }
  if (options.checkpoint != nullptr && options.resume != nullptr) {
    options.checkpoint->seed_from(*options.resume);
  }

  std::vector<TransformerConfig> configs;
  std::function<void(ShapeCandidate&)> annotate;
  std::function<bool(const ShapeCandidate&)> keep =
      [](const ShapeCandidate&) { return true; };
  const std::int64_t h0 = base.hidden_size;
  // Generation-time twin of the hidden/joint `keep` filter. The parameter
  // bound is a pure function of the config — the same arithmetic
  // evaluate_against uses for param_delta_frac — so candidates that are
  // certain to be dropped never reach the (orders of magnitude costlier)
  // evaluation stage. `keep` stays on as the authoritative filter.
  const double base_params = static_cast<double>(tfm::exact_param_count(base));
  const auto param_delta_ok = [&](const TransformerConfig& cfg) {
    if (cfg.hidden_size == h0) return true;
    const double params = static_cast<double>(tfm::exact_param_count(cfg));
    const double delta_frac = (params - base_params) / base_params;
    return std::fabs(delta_frac) <= options.max_param_delta_frac;
  };

  switch (mode) {
    case SearchMode::kHeads:
      for (std::int64_t a :
           legal_head_counts(base.hidden_size, base.tensor_parallel)) {
        TransformerConfig cfg = base.with_heads(a);
        if (a != base.num_heads) {
          cfg.name = base.name + "-a" + std::to_string(a);
        }
        configs.push_back(std::move(cfg));
      }
      annotate = [](ShapeCandidate& c) {
        const std::int64_t head_dim = c.config.head_dim();
        c.note = str_format("h/a = %lld (pow2 granule %lld)",
                            static_cast<long long>(head_dim),
                            static_cast<long long>(largest_pow2_dividing(
                                static_cast<std::uint64_t>(head_dim))));
      };
      break;
    case SearchMode::kHidden:
      for (std::int64_t h : hidden_grid(base, radius_frac, step)) {
        if (h % base.num_heads != 0) continue;  // keep a, integral h/a
        TransformerConfig cfg = base.with_hidden(h);
        if (!param_delta_ok(cfg)) continue;
        if (h != base.hidden_size) {
          cfg.name = base.name + "-h" + std::to_string(h);
        }
        configs.push_back(std::move(cfg));
      }
      annotate = [](ShapeCandidate& c) {
        c.note = str_format("h = %lld (params %+0.2f%%)",
                            static_cast<long long>(c.config.hidden_size),
                            100.0 * c.param_delta_frac);
      };
      keep = [&options, h0](const ShapeCandidate& c) {
        return c.config.hidden_size == h0 ||
               std::fabs(c.param_delta_frac) <= options.max_param_delta_frac;
      };
      break;
    case SearchMode::kJoint:
      for (std::int64_t h : hidden_grid(base, radius_frac, step)) {
        for (std::int64_t a : legal_head_counts(h, base.tensor_parallel)) {
          TransformerConfig cfg = base.with_hidden(h).with_heads(a);
          if (!param_delta_ok(cfg)) continue;
          if (h != base.hidden_size || a != base.num_heads) {
            cfg.name = base.name + "-a" + std::to_string(a) + "-h" +
                       std::to_string(h);
          }
          configs.push_back(std::move(cfg));
        }
      }
      annotate = [](ShapeCandidate& c) {
        c.note = str_format("a = %lld, h = %lld, h/a = %lld (params %+0.2f%%)",
                            static_cast<long long>(c.config.num_heads),
                            static_cast<long long>(c.config.hidden_size),
                            static_cast<long long>(c.config.head_dim()),
                            100.0 * c.param_delta_frac);
      };
      keep = [&options, h0](const ShapeCandidate& c) {
        return c.config.hidden_size == h0 ||
               std::fabs(c.param_delta_frac) <= options.max_param_delta_frac;
      };
      break;
  }

  SearchOutcome outcome =
      evaluate_pipeline(configs, base, sim, options, annotate, keep);
  if (options.sensitivity) {
    // Probed once per round, sequentially, after the sweep: the probes are
    // pure model analyses, so the outcome and the obs series they feed stay
    // byte-identical at any thread count.
    outcome.sensitivity = sensitivity_probe(base, sim);
    record_sensitivity(outcome.sensitivity);
  }
  return outcome;
}

std::vector<ShapeCandidate> search_heads(const TransformerConfig& base,
                                         const gemm::GemmSimulator& sim,
                                         const SearchOptions& options) {
  return run_shape_search(SearchMode::kHeads, base, sim, 0.1, 0, options)
      .ranked;
}

std::vector<ShapeCandidate> search_hidden(const TransformerConfig& base,
                                          const gemm::GemmSimulator& sim,
                                          double radius_frac,
                                          std::int64_t step,
                                          const SearchOptions& options) {
  return run_shape_search(SearchMode::kHidden, base, sim, radius_frac, step,
                          options)
      .ranked;
}

std::vector<ShapeCandidate> search_joint(const TransformerConfig& base,
                                         const gemm::GemmSimulator& sim,
                                         double radius_frac,
                                         std::int64_t step,
                                         const SearchOptions& options) {
  return run_shape_search(SearchMode::kJoint, base, sim, radius_frac, step,
                          options)
      .ranked;
}

std::string mlp_search_fingerprint(const TransformerConfig& base,
                                   const gemm::GemmSimulator& sim,
                                   std::int64_t lo, std::int64_t hi) {
  return str_format("mlp base=%s gpu=%s policy=%d lo=%lld hi=%lld",
                    base.to_string().c_str(), sim.gpu().id.c_str(),
                    static_cast<int>(sim.policy()), static_cast<long long>(lo),
                    static_cast<long long>(hi));
}

MlpSearchOutcome run_mlp_search(const TransformerConfig& base,
                                const gemm::GemmSimulator& sim,
                                std::int64_t lo, std::int64_t hi,
                                const SearchOptions& options) {
  base.validate();
  CODESIGN_CHECK(lo > 0 && hi >= lo, "bad d_ff search range");
  const std::string fingerprint = mlp_search_fingerprint(base, sim, lo, hi);
  if (options.resume != nullptr &&
      options.resume->fingerprint() != fingerprint) {
    throw ConfigError(
        "cannot resume: checkpoint belongs to a different search (file: '" +
        options.resume->fingerprint() + "', this run: '" + fingerprint + "')");
  }
  if (options.checkpoint != nullptr && options.resume != nullptr) {
    options.checkpoint->seed_from(*options.resume);
  }

  // Only multiples of t are legal, so step by t from the first one instead
  // of testing divisibility value by value.
  const std::int64_t t = base.tensor_parallel;
  std::vector<std::int64_t> widths;
  for (std::int64_t ff = round_up(lo, t); ff <= hi; ff += t) {
    widths.push_back(ff);
  }
  CODESIGN_CHECK(!widths.empty(), "d_ff search range produced no candidates");

  MlpSearchOutcome outcome;
  outcome.total_candidates = widths.size();

  const auto skip_key = [](std::int64_t ff) {
    return "dff:" + std::to_string(ff);
  };
  const auto config_for = [&base](std::int64_t ff) {
    TransformerConfig cfg = base;
    cfg.mlp_intermediate = ff;
    cfg.name = base.name + "-dff" + std::to_string(ff);
    return cfg;
  };

  // Batched width evaluation: the 2–3 MLP GEMMs of a candidate resolve
  // through one estimate_times() call. The sum order matches the scalar
  // formulation — (up + down) + gate — so the result is bit-identical to
  // a latency() loop (the gate twin repeats the up shape; a batch computes
  // it from the same expressions a second scalar call would).
  struct MlpScratch {
    std::vector<gemm::GemmProblem> problems;
    std::vector<double> times;
    gemm::GemmSimulator::BatchWorkspace batch;
  };
  const auto evaluate_width = [&base, &sim](std::int64_t ff, MlpScratch& ws) {
    TransformerConfig cfg = base;
    cfg.mlp_intermediate = ff;
    const gemm::GemmProblem up = tfm::mlp_up_gemm(cfg);
    const gemm::GemmProblem down = tfm::mlp_down_gemm(cfg);
    const bool gated = cfg.activation == tfm::Activation::kSwiGlu;
    ws.problems.clear();
    ws.problems.push_back(up);
    ws.problems.push_back(down);
    if (gated) ws.problems.push_back(up);  // the gate twin
    ws.times.resize(ws.problems.size());
    sim.estimate_times(ws.problems, ws.times, ws.batch);
    double time = ws.times[0] + ws.times[1];
    double flops = up.flops() + down.flops();
    if (gated) {
      time += ws.times[2];
      flops += up.flops();
    }
    MlpCandidate c;
    c.d_ff = ff;
    c.mlp_time = time;
    c.mlp_tflops = flops / time / 1e12;
    c.coefficient =
        static_cast<double>(ff) / static_cast<double>(base.hidden_size);
    return c;
  };

  std::vector<MlpCandidate> slots(widths.size());
  std::vector<SlotState> state(widths.size(), SlotState::kPending);
  std::vector<SkipInfo> skips(widths.size());
  GuardCounters counters;

  if (options.resume != nullptr) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      if (const CheckpointMlpEntry* e = options.resume->mlp(widths[i])) {
        MlpCandidate c;
        c.d_ff = widths[i];
        c.mlp_time = e->mlp_time;
        c.mlp_tflops = e->mlp_tflops;
        c.coefficient = e->coefficient;
        slots[i] = c;
        state[i] = SlotState::kDone;
        ++outcome.resumed;
      } else if (const CheckpointSkipEntry* s =
                     options.resume->skip(skip_key(widths[i]))) {
        state[i] = SlotState::kSkipped;
        skips[i] = {s->reason, s->attempts};
        ++outcome.resumed;
      }
    }
  }

  const auto evaluate_one = [&](std::size_t i, MlpScratch& ws) {
    if (state[i] != SlotState::kPending) return;
    SkipInfo skip;
    const SlotState s = run_guarded(options, counters, &skip, [&] {
      CODESIGN_FAILPOINT_T("advisor.search.evaluate",
                           fail::token(skip_key(widths[i])));
      slots[i] = evaluate_width(widths[i], ws);
    });
    state[i] = s;
    if (s == SlotState::kSkipped) {
      skips[i] = std::move(skip);
      if (options.checkpoint != nullptr) {
        options.checkpoint->record_skip(skip_key(widths[i]),
                                        {skips[i].attempts, skips[i].reason});
      }
    } else if (s == SlotState::kDone && options.checkpoint != nullptr) {
      options.checkpoint->record_mlp(
          widths[i],
          {slots[i].mlp_time, slots[i].mlp_tflops, slots[i].coefficient});
    }
  };
  if (options.threads == 1) {
    MlpScratch ws;
    for (std::size_t i = 0; i < widths.size(); ++i) evaluate_one(i, ws);
  } else {
    ThreadPool pool(options.threads);
    pool.parallel_for_ranges(widths.size(),
                             [&](std::size_t begin, std::size_t end) {
                               MlpScratch ws;
                               for (std::size_t i = begin; i < end; ++i) {
                                 evaluate_one(i, ws);
                               }
                             });
  }

  std::vector<MlpCandidate> out;
  out.reserve(widths.size());
  for (std::size_t i = 0; i < widths.size(); ++i) {
    switch (state[i]) {
      case SlotState::kDone:
        ++outcome.evaluated;
        out.push_back(slots[i]);
        break;
      case SlotState::kSkipped:
        outcome.skipped.push_back(
            {config_for(widths[i]), skips[i].reason, skips[i].attempts});
        break;
      case SlotState::kPending:
      case SlotState::kUnreached:
        break;
    }
  }

  // Deterministic merge: d_ff is unique per candidate, so it is the total
  // tie-break for equal predicted times.
  std::stable_sort(out.begin(), out.end(),
                   [](const MlpCandidate& a, const MlpCandidate& b) {
                     if (a.mlp_time != b.mlp_time) return a.mlp_time < b.mlp_time;
                     return a.d_ff < b.d_ff;
                   });
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].rank_in_range =
        static_cast<double>(i) / static_cast<double>(out.size() - 1 == 0
                                                         ? 1
                                                         : out.size() - 1);
  }
  outcome.retries =
      static_cast<std::size_t>(counters.retries.load(std::memory_order_relaxed));
  outcome.backoff_units = counters.backoff.load(std::memory_order_relaxed);
  outcome.truncated = outcome.unreached() > 0 ||
                      (options.cancel != nullptr && options.cancel->cancelled());
  if (options.cancel != nullptr) {
    outcome.cancel_reason = options.cancel->reason();
  }
  if (options.checkpoint != nullptr) options.checkpoint->flush();

  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("advisor.mlp_scan.runs").add();
    reg.counter("advisor.mlp_scan.candidates").add(widths.size());
    reg.counter("advisor.mlp_scan.kept").add(out.size());
    reg.counter("advisor.mlp_scan.skipped").add(outcome.skipped.size());
    reg.counter("advisor.mlp_scan.retries").add(outcome.retries);
    reg.counter("advisor.mlp_scan.resumed").add(outcome.resumed);
  }
  if (auto* rs = obs::RequestScope::current()) {
    rs->search_candidates += outcome.evaluated;
  }
  if (options.sensitivity) {
    outcome.sensitivity = sensitivity_probe(base, sim);
    record_sensitivity(outcome.sensitivity);
  }
  outcome.ranked = std::move(out);
  return outcome;
}

std::vector<MlpCandidate> search_mlp_intermediate(
    const TransformerConfig& base, const gemm::GemmSimulator& sim,
    std::int64_t lo, std::int64_t hi, const SearchOptions& options) {
  return run_mlp_search(base, sim, lo, hi, options).ranked;
}

double mlp_candidate_percentile(const std::vector<MlpCandidate>& scan,
                                std::int64_t d_ff) {
  CODESIGN_CHECK(!scan.empty(), "d_ff percentile lookup in an empty scan");
  for (const MlpCandidate& c : scan) {
    if (c.d_ff == d_ff) return c.rank_in_range;
  }
  throw LookupError("d_ff " + std::to_string(d_ff) + " not in scan results");
}

std::int64_t pad_vocab(std::int64_t v) {
  CODESIGN_CHECK(v > 0, "vocab size must be positive");
  return round_up<std::int64_t>(v, 64);
}

}  // namespace codesign::advisor
