#include "advisor/search.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <utility>

#include "advisor/rules.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "transformer/flops.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/params.hpp"

namespace codesign::advisor {

namespace {

/// Baseline quantities shared by every candidate of one search. Computed
/// once per search instead of once per candidate — the baseline layer
/// analysis is exactly as expensive as a candidate's, so hoisting it halves
/// the evaluation cost of the whole sweep.
struct BaselineContext {
  double layer_time = 0.0;
  double param_count = 0.0;
};

BaselineContext make_baseline(const TransformerConfig& base,
                              const gemm::GemmSimulator& sim) {
  BaselineContext ctx;
  ctx.layer_time = tfm::layer_total_time(base, sim);
  ctx.param_count = static_cast<double>(tfm::exact_param_count(base));
  return ctx;
}

ShapeCandidate evaluate_against(const TransformerConfig& config,
                                const BaselineContext& base,
                                const gemm::GemmSimulator& sim) {
  // layer_total_time is the lean twin of analyze_layer: bit-identical
  // total, none of the per-op report the search never reads.
  const double layer_time = tfm::layer_total_time(config, sim);
  ShapeCandidate c;
  c.config = config;
  c.layer_time = layer_time;
  c.layer_tflops = tfm::layer_forward_flops(config) / layer_time / 1e12;
  c.speedup_vs_base = base.layer_time / layer_time;
  c.param_count = static_cast<double>(tfm::exact_param_count(config));
  c.param_delta_frac = (c.param_count - base.param_count) / base.param_count;
  RuleContext ctx;
  ctx.gpu = &sim.gpu();
  c.rules_pass = satisfies_performance_rules(config, ctx);
  return c;
}

/// Deterministic merge: stable sort on (layer_time, config name) — the name
/// tie-break makes the order total, so the ranking cannot depend on
/// evaluation order — then trim. The baseline is always kept for reference:
/// if it fell past the cut it replaces the worst kept candidate.
void sort_and_trim(std::vector<ShapeCandidate>& cands,
                   const TransformerConfig& baseline,
                   const SearchOptions& options) {
  std::stable_sort(cands.begin(), cands.end(),
                   [](const ShapeCandidate& a, const ShapeCandidate& b) {
                     if (a.layer_time != b.layer_time) {
                       return a.layer_time < b.layer_time;
                     }
                     return a.config.name < b.config.name;
                   });
  if (cands.size() <= options.max_candidates) return;

  const auto base_it =
      std::find_if(cands.begin(), cands.end(), [&](const ShapeCandidate& c) {
        return c.config == baseline;
      });
  const bool baseline_trimmed =
      base_it != cands.end() &&
      static_cast<std::size_t>(base_it - cands.begin()) >=
          options.max_candidates;
  ShapeCandidate baseline_copy;
  if (baseline_trimmed) baseline_copy = *base_it;

  cands.resize(options.max_candidates);
  if (baseline_trimmed && !cands.empty()) {
    cands.back() = std::move(baseline_copy);
  }
}

/// The shared "generate → evaluate in parallel → deterministically merge"
/// pipeline. `annotate` fills the human-readable note from the evaluated
/// candidate; `keep` filters (e.g. the hidden sweep's parameter-delta
/// bound). Candidates are evaluated into slots indexed by generation order,
/// so the merged ranking is byte-identical at any thread count.
std::vector<ShapeCandidate> evaluate_pipeline(
    const std::vector<TransformerConfig>& configs,
    const TransformerConfig& baseline, const gemm::GemmSimulator& sim,
    const SearchOptions& options,
    const std::function<void(ShapeCandidate&)>& annotate,
    const std::function<bool(const ShapeCandidate&)>& keep) {
  // Self-profiling of the pipeline stages: wall-clock, so every series here
  // is kBestEffort — the candidate/kept counters below are the only
  // deterministic ones. Everything is gated on the enabled flag so a
  // metrics-off search takes no locks and reads no clocks.
  const bool metrics_on = obs::MetricsRegistry::enabled();

  const BaselineContext base = make_baseline(baseline, sim);

  std::vector<ShapeCandidate> evaluated(configs.size());
  const auto evaluate_one = [&](std::size_t i) {
    ShapeCandidate c = evaluate_against(configs[i], base, sim);
    annotate(c);
    evaluated[i] = std::move(c);
  };
  {
    obs::ScopedEvent span("search", "evaluate");
    obs::ScopedTimer timer("advisor.search.evaluate_us");
    if (options.threads == 1) {
      for (std::size_t i = 0; i < configs.size(); ++i) evaluate_one(i);
    } else {
      ThreadPool pool(options.threads);
      pool.parallel_for(configs.size(), evaluate_one);
    }
    if (timer.active() && !configs.empty()) {
      const double us = timer.elapsed_us();
      if (us > 0.0) {
        obs::MetricsRegistry::global()
            .gauge("advisor.search.candidates_per_sec")
            .update_max(static_cast<double>(configs.size()) * 1e6 / us);
      }
    }
  }

  std::vector<ShapeCandidate> out;
  out.reserve(evaluated.size());
  {
    obs::ScopedEvent span("search", "merge");
    obs::ScopedTimer timer("advisor.search.merge_us");
    for (ShapeCandidate& c : evaluated) {
      if (keep(c)) out.push_back(std::move(c));
    }
    sort_and_trim(out, baseline, options);
  }

  if (metrics_on) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("advisor.search.runs").add();
    reg.counter("advisor.search.candidates").add(configs.size());
    reg.counter("advisor.search.kept").add(out.size());
  }
  return out;
}

/// Legal head counts for a given hidden size: a | h, t | a, and a practical
/// head dimension (32 <= h/a <= 256).
std::vector<std::int64_t> legal_head_counts(std::int64_t h,
                                            std::int64_t tensor_parallel) {
  std::vector<std::int64_t> out;
  for (std::int64_t a = 1; a <= h; ++a) {
    if (h % a != 0) continue;
    if (a % tensor_parallel != 0) continue;
    const std::int64_t head_dim = h / a;
    if (head_dim < 32 || head_dim > 256) continue;
    out.push_back(a);
  }
  return out;
}

/// The hidden sizes the ±radius sweep visits (multiples of `step`).
std::vector<std::int64_t> hidden_grid(const TransformerConfig& base,
                                      double radius_frac, std::int64_t step) {
  CODESIGN_CHECK(radius_frac > 0.0 && radius_frac < 1.0,
                 "radius_frac must be in (0, 1)");
  if (step <= 0) step = 64 * base.tensor_parallel;
  const std::int64_t h0 = base.hidden_size;
  const auto radius = static_cast<std::int64_t>(
      std::llround(radius_frac * static_cast<double>(h0)));
  const std::int64_t lo = std::max<std::int64_t>(step, h0 - radius);
  const std::int64_t hi = h0 + radius;
  std::vector<std::int64_t> out;
  for (std::int64_t h = round_up(lo, step); h <= hi; h += step) {
    out.push_back(h);
  }
  return out;
}

}  // namespace

ShapeCandidate evaluate_candidate(const TransformerConfig& config,
                                  const TransformerConfig& baseline,
                                  const gemm::GemmSimulator& sim) {
  return evaluate_against(config, make_baseline(baseline, sim), sim);
}

std::vector<ShapeCandidate> search_heads(const TransformerConfig& base,
                                         const gemm::GemmSimulator& sim,
                                         const SearchOptions& options) {
  base.validate();
  std::vector<TransformerConfig> configs;
  for (std::int64_t a : legal_head_counts(base.hidden_size,
                                          base.tensor_parallel)) {
    TransformerConfig cfg = base.with_heads(a);
    if (a != base.num_heads) {
      cfg.name = base.name + "-a" + std::to_string(a);
    }
    configs.push_back(std::move(cfg));
  }
  return evaluate_pipeline(
      configs, base, sim, options,
      [](ShapeCandidate& c) {
        const std::int64_t head_dim = c.config.head_dim();
        c.note = str_format("h/a = %lld (pow2 granule %lld)",
                            static_cast<long long>(head_dim),
                            static_cast<long long>(largest_pow2_dividing(
                                static_cast<std::uint64_t>(head_dim))));
      },
      [](const ShapeCandidate&) { return true; });
}

std::vector<ShapeCandidate> search_hidden(const TransformerConfig& base,
                                          const gemm::GemmSimulator& sim,
                                          double radius_frac,
                                          std::int64_t step,
                                          const SearchOptions& options) {
  base.validate();
  std::vector<TransformerConfig> configs;
  for (std::int64_t h : hidden_grid(base, radius_frac, step)) {
    if (h % base.num_heads != 0) continue;  // keep a, require integral h/a
    TransformerConfig cfg = base.with_hidden(h);
    if (h != base.hidden_size) cfg.name = base.name + "-h" + std::to_string(h);
    configs.push_back(std::move(cfg));
  }
  const std::int64_t h0 = base.hidden_size;
  return evaluate_pipeline(
      configs, base, sim, options,
      [](ShapeCandidate& c) {
        c.note = str_format("h = %lld (params %+0.2f%%)",
                            static_cast<long long>(c.config.hidden_size),
                            100.0 * c.param_delta_frac);
      },
      [&options, h0](const ShapeCandidate& c) {
        return c.config.hidden_size == h0 ||
               std::fabs(c.param_delta_frac) <= options.max_param_delta_frac;
      });
}

std::vector<ShapeCandidate> search_joint(const TransformerConfig& base,
                                         const gemm::GemmSimulator& sim,
                                         double radius_frac,
                                         std::int64_t step,
                                         const SearchOptions& options) {
  base.validate();
  std::vector<TransformerConfig> configs;
  for (std::int64_t h : hidden_grid(base, radius_frac, step)) {
    for (std::int64_t a : legal_head_counts(h, base.tensor_parallel)) {
      TransformerConfig cfg = base.with_hidden(h).with_heads(a);
      if (h != base.hidden_size || a != base.num_heads) {
        cfg.name = base.name + "-a" + std::to_string(a) + "-h" +
                   std::to_string(h);
      }
      configs.push_back(std::move(cfg));
    }
  }
  const std::int64_t h0 = base.hidden_size;
  return evaluate_pipeline(
      configs, base, sim, options,
      [](ShapeCandidate& c) {
        c.note = str_format("a = %lld, h = %lld, h/a = %lld (params %+0.2f%%)",
                            static_cast<long long>(c.config.num_heads),
                            static_cast<long long>(c.config.hidden_size),
                            static_cast<long long>(c.config.head_dim()),
                            100.0 * c.param_delta_frac);
      },
      [&options, h0](const ShapeCandidate& c) {
        return c.config.hidden_size == h0 ||
               std::fabs(c.param_delta_frac) <= options.max_param_delta_frac;
      });
}

std::vector<MlpCandidate> search_mlp_intermediate(
    const TransformerConfig& base, const gemm::GemmSimulator& sim,
    std::int64_t lo, std::int64_t hi, const SearchOptions& options) {
  base.validate();
  CODESIGN_CHECK(lo > 0 && hi >= lo, "bad d_ff search range");

  // Only multiples of t are legal, so step by t from the first one instead
  // of testing divisibility value by value.
  const std::int64_t t = base.tensor_parallel;
  std::vector<std::int64_t> widths;
  for (std::int64_t ff = round_up(lo, t); ff <= hi; ff += t) {
    widths.push_back(ff);
  }
  CODESIGN_CHECK(!widths.empty(), "d_ff search range produced no candidates");

  const auto evaluate_width = [&base, &sim](std::int64_t ff) {
    TransformerConfig cfg = base;
    cfg.mlp_intermediate = ff;
    const gemm::GemmProblem up = tfm::mlp_up_gemm(cfg);
    const gemm::GemmProblem down = tfm::mlp_down_gemm(cfg);
    double time = sim.latency(up) + sim.latency(down);
    double flops = up.flops() + down.flops();
    if (cfg.activation == tfm::Activation::kSwiGlu) {
      time += sim.latency(up);  // the gate twin
      flops += up.flops();
    }
    MlpCandidate c;
    c.d_ff = ff;
    c.mlp_time = time;
    c.mlp_tflops = flops / time / 1e12;
    c.coefficient =
        static_cast<double>(ff) / static_cast<double>(base.hidden_size);
    return c;
  };

  std::vector<MlpCandidate> out(widths.size());
  if (options.threads == 1) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      out[i] = evaluate_width(widths[i]);
    }
  } else {
    ThreadPool pool(options.threads);
    pool.parallel_for(widths.size(),
                      [&](std::size_t i) { out[i] = evaluate_width(widths[i]); });
  }

  // Deterministic merge: d_ff is unique per candidate, so it is the total
  // tie-break for equal predicted times.
  std::stable_sort(out.begin(), out.end(),
                   [](const MlpCandidate& a, const MlpCandidate& b) {
                     if (a.mlp_time != b.mlp_time) return a.mlp_time < b.mlp_time;
                     return a.d_ff < b.d_ff;
                   });
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].rank_in_range =
        static_cast<double>(i) / static_cast<double>(out.size() - 1 == 0
                                                         ? 1
                                                         : out.size() - 1);
  }
  return out;
}

double mlp_candidate_percentile(const std::vector<MlpCandidate>& scan,
                                std::int64_t d_ff) {
  CODESIGN_CHECK(!scan.empty(), "d_ff percentile lookup in an empty scan");
  for (const MlpCandidate& c : scan) {
    if (c.d_ff == d_ff) return c.rank_in_range;
  }
  throw LookupError("d_ff " + std::to_string(d_ff) + " not in scan results");
}

std::int64_t pad_vocab(std::int64_t v) {
  CODESIGN_CHECK(v > 0, "vocab size must be positive");
  return round_up<std::int64_t>(v, 64);
}

}  // namespace codesign::advisor
