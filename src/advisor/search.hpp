// search.hpp — shape search: find nearby, better-performing architectures.
//
// Implements the paper's §VI-B / §VII workflows:
//   * search_heads        — re-shape GPT-3 2.7B style: keep h, change a so
//                           h/a lands on an efficient granule (the 1.18×).
//   * search_hidden       — nearby hidden sizes on efficient granules, with
//                           the parameter-count delta reported.
//   * search_joint        — the heads × hidden grid: every legal (a, h)
//                           combination in the neighbourhood, ranked
//                           together. Tractable because the evaluation
//                           pipeline parallelizes across candidates and the
//                           simulator memoizes recurring GEMM shapes (see
//                           docs/search_pipeline.md).
//   * search_mlp_intermediate — the §VII-B SwiGLU brute force: scan d_ff
//                           around (8/3)h for the best-performing MLP pair
//                           (this is how Llama-2-7B's 11008 is validated).
//   * pad_vocab           — the Fig-20 / Karpathy rule: next multiple of 64.
//
// Every search runs the same pipeline: generate candidate configs →
// evaluate them (in parallel when SearchOptions::threads > 1) →
// deterministically merge (stable sort with a total tie-break on the config
// name). Results are byte-identical at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gemmsim/simulator.hpp"
#include "transformer/config.hpp"

namespace codesign::advisor {

using tfm::TransformerConfig;

/// One candidate architecture with its predicted performance.
struct ShapeCandidate {
  TransformerConfig config;
  double layer_time = 0.0;        ///< seconds per transformer layer
  double layer_tflops = 0.0;      ///< useful TFLOP/s of the layer
  double speedup_vs_base = 1.0;   ///< base layer_time / candidate layer_time
  double param_count = 0.0;       ///< exact parameters
  double param_delta_frac = 0.0;  ///< (candidate - base) / base
  bool rules_pass = false;        ///< satisfies_performance_rules
  std::string note;

  /// Field-exact equality (used by the determinism tests: an N-thread
  /// search must reproduce the 1-thread result bit for bit).
  bool operator==(const ShapeCandidate&) const = default;
};

struct SearchOptions {
  /// Maximum |param delta| tolerated for a candidate (fraction of base).
  /// One 64-element step of h changes the count by ~2·64/h, so ~6% admits
  /// the immediate neighbours of typical hidden sizes.
  double max_param_delta_frac = 0.06;
  /// Keep at most this many candidates (best first). The baseline config is
  /// always retained for reference: if trimming would drop it, it replaces
  /// the worst kept candidate.
  std::size_t max_candidates = 16;
  /// Candidate-evaluation parallelism: 1 = sequential on the calling
  /// thread, N > 1 = a pool of N workers, 0 = one worker per hardware
  /// thread. The ranking is identical for every value.
  std::size_t threads = 1;
};

/// Evaluate a config's single-layer time/throughput (shared helper).
ShapeCandidate evaluate_candidate(const TransformerConfig& config,
                                  const TransformerConfig& baseline,
                                  const gemm::GemmSimulator& sim);

/// Alternative head counts for the same h (a must divide h). Candidates are
/// ranked by predicted layer throughput; parameter count is unchanged by
/// construction. The baseline itself is always included (speedup 1.0).
std::vector<ShapeCandidate> search_heads(const TransformerConfig& base,
                                         const gemm::GemmSimulator& sim,
                                         const SearchOptions& options = {});

/// Nearby hidden sizes within ±`radius_frac` of h, stepping on multiples of
/// `step` (default 64·t), keeping a and L fixed. Parameter deltas reported.
std::vector<ShapeCandidate> search_hidden(const TransformerConfig& base,
                                          const gemm::GemmSimulator& sim,
                                          double radius_frac = 0.1,
                                          std::int64_t step = 0,
                                          const SearchOptions& options = {});

/// Joint grid search over heads × hidden: every hidden size the
/// search_hidden sweep would visit, crossed with every legal head count for
/// that hidden size (a | h, t | a, 32 <= h/a <= 256), ranked in one list.
/// Quadratically more candidates than either single sweep — run it with
/// options.threads > 1 and a cache-enabled simulator.
std::vector<ShapeCandidate> search_joint(const TransformerConfig& base,
                                         const gemm::GemmSimulator& sim,
                                         double radius_frac = 0.1,
                                         std::int64_t step = 0,
                                         const SearchOptions& options = {});

/// One d_ff candidate of the SwiGLU brute force.
struct MlpCandidate {
  std::int64_t d_ff = 0;
  double mlp_time = 0.0;      ///< up + gate + down GEMM seconds
  double mlp_tflops = 0.0;
  double coefficient = 0.0;   ///< d_ff / h
  double rank_in_range = 0.0; ///< percentile of mlp_time within the scan (0 = best)

  bool operator==(const MlpCandidate&) const = default;
};

/// Brute-force every d_ff in [lo, hi] (inclusive) that satisfies t | d_ff —
/// the scan starts at round_up(lo, t) and steps by t, so no iteration is
/// wasted on non-divisible values. Evaluates the MLP GEMM pair (plus gate
/// when SwiGLU); returns all candidates sorted by time, best first.
std::vector<MlpCandidate> search_mlp_intermediate(
    const TransformerConfig& base, const gemm::GemmSimulator& sim,
    std::int64_t lo, std::int64_t hi, const SearchOptions& options = {});

/// Look up a specific d_ff in a scan result (e.g. Llama-2's 11008) and
/// return its percentile rank (0 = best in range). Throws if absent (a
/// LookupError) or if the scan is empty (an Error).
double mlp_candidate_percentile(const std::vector<MlpCandidate>& scan,
                                std::int64_t d_ff);

/// The vocab-padding rule: smallest multiple of 64 >= v.
std::int64_t pad_vocab(std::int64_t v);

}  // namespace codesign::advisor
