// search.hpp — shape search: find nearby, better-performing architectures.
//
// Implements the paper's §VI-B / §VII workflows:
//   * search_heads        — re-shape GPT-3 2.7B style: keep h, change a so
//                           h/a lands on an efficient granule (the 1.18×).
//   * search_hidden       — nearby hidden sizes on efficient granules, with
//                           the parameter-count delta reported.
//   * search_joint        — the heads × hidden grid: every legal (a, h)
//                           combination in the neighbourhood, ranked
//                           together. Tractable because the evaluation
//                           pipeline parallelizes across candidates and the
//                           simulator memoizes recurring GEMM shapes (see
//                           docs/search_pipeline.md).
//   * search_mlp_intermediate — the §VII-B SwiGLU brute force: scan d_ff
//                           around (8/3)h for the best-performing MLP pair
//                           (this is how Llama-2-7B's 11008 is validated).
//   * pad_vocab           — the Fig-20 / Karpathy rule: next multiple of 64.
//
// Every search runs the same pipeline: generate candidate configs →
// evaluate them (in parallel when SearchOptions::threads > 1) →
// deterministically merge (stable sort with a total tie-break on the config
// name). Results are byte-identical at any thread count.
//
// Robustness (docs/ROBUSTNESS.md): the pipeline isolates per-candidate
// failures — a throwing candidate is recorded as a SkippedCandidate (after
// bounded retry for transient faults) instead of aborting the sweep, unless
// FaultPolicy::strict restores the rethrow. A CancelToken (SIGINT /
// --deadline-ms) stops the sweep between candidates with an explicit
// truncation marker, and a CheckpointWriter/SearchCheckpoint pair persists
// completed candidates so a killed sweep resumes byte-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "advisor/checkpoint.hpp"
#include "common/cancel.hpp"
#include "gemmsim/simulator.hpp"
#include "transformer/config.hpp"

namespace codesign::advisor {

using tfm::TransformerConfig;

/// One candidate architecture with its predicted performance.
struct ShapeCandidate {
  TransformerConfig config;
  double layer_time = 0.0;        ///< seconds per transformer layer
  double layer_tflops = 0.0;      ///< useful TFLOP/s of the layer
  double speedup_vs_base = 1.0;   ///< base layer_time / candidate layer_time
  double param_count = 0.0;       ///< exact parameters
  double param_delta_frac = 0.0;  ///< (candidate - base) / base
  bool rules_pass = false;        ///< satisfies_performance_rules
  std::string note;

  /// Field-exact equality (used by the determinism tests: an N-thread
  /// search must reproduce the 1-thread result bit for bit).
  bool operator==(const ShapeCandidate&) const = default;
};

/// How the pipeline treats a candidate whose evaluation throws.
struct FaultPolicy {
  /// Restore the pre-robustness behaviour: rethrow the first error and
  /// abort the sweep (remaining chunks fast-fail, see ThreadPool).
  bool strict = false;
  /// Retry budget for *transient* faults (fail::InjectedFault with
  /// transient() == true). Permanent errors are never retried. Retries are
  /// immediate — the evaluation is a pure computation — and accounted
  /// deterministically in the outcome/metrics (no wall clock).
  int max_retries = 2;
};

/// One dimension's finite-difference sensitivity around the base config:
/// how much the whole-model forward time moves when that dimension takes
/// one deterministic step (the smallest legal one) while everything else
/// stays fixed. The raw material of bottleneck-guided search pruning.
struct DimensionSensitivity {
  std::string dimension;  ///< heads|hidden|tensor_parallel|vocab|tile_policy
  bool probed = false;    ///< false: no legal probe exists (note says why)
  double base_value = 0.0;   ///< the dimension's value at the base point
  double probe_value = 0.0;  ///< the value the probe evaluated
  double base_time = 0.0;    ///< model forward seconds at the base point
  double probe_time = 0.0;   ///< model forward seconds at the probe point
  double delta_frac = 0.0;   ///< (probe_time - base_time) / base_time
  std::string note;

  bool operator==(const DimensionSensitivity&) const = default;
};

/// Probe every dimension once around `base`. Sequential and pure — the
/// result is byte-identical at any thread count and cache state. Probes
/// that would produce an illegal config (e.g. no divisor-compatible head
/// count) come back with probed == false instead of throwing.
std::vector<DimensionSensitivity> sensitivity_probe(
    const TransformerConfig& base, const gemm::GemmSimulator& sim);

struct SearchOptions {
  /// Maximum |param delta| tolerated for a candidate (fraction of base).
  /// One 64-element step of h changes the count by ~2·64/h, so ~6% admits
  /// the immediate neighbours of typical hidden sizes.
  double max_param_delta_frac = 0.06;
  /// Run the per-dimension sensitivity_probe() around the base config and
  /// attach it to the outcome (and, when metrics are enabled, to the
  /// deterministic `advisor.sensitivity.*` obs series). Off by default —
  /// it costs a handful of extra model analyses per search round.
  bool sensitivity = false;
  /// Keep at most this many candidates (best first). The baseline config is
  /// always retained for reference: if trimming would drop it, it replaces
  /// the worst kept candidate.
  std::size_t max_candidates = 16;
  /// Candidate-evaluation parallelism: 1 = sequential on the calling
  /// thread, N > 1 = a pool of N workers, 0 = one worker per hardware
  /// thread. The ranking is identical for every value.
  std::size_t threads = 1;

  /// Per-candidate failure handling (skip vs strict rethrow, retry budget).
  FaultPolicy faults;
  /// Optional cooperative cancellation, polled between candidates. A
  /// tripped token truncates the sweep (SearchOutcome::truncated) — never
  /// a silent cap.
  const CancelToken* cancel = nullptr;
  /// Optional checkpointing: completed candidates are recorded here as the
  /// sweep runs (not owned).
  CheckpointWriter* checkpoint = nullptr;
  /// Optional resume source: candidates present in this checkpoint are
  /// filled from it instead of re-evaluated (not owned). The caller must
  /// have validated the fingerprint (the run_* entry points do).
  const SearchCheckpoint* resume = nullptr;
};

/// A candidate the sweep could not evaluate: the typed record graceful
/// degradation emits instead of aborting.
struct SkippedCandidate {
  TransformerConfig config;
  std::string reason;
  int attempts = 1;  ///< evaluation attempts spent (1 + retries)

  bool operator==(const SkippedCandidate&) const = default;
};

/// Everything a sweep produced, including its failure/truncation record.
/// `ranked`/`skipped` are byte-identical at any thread count for a given
/// fault configuration (token-seeded failpoints fire per-candidate, not
/// per-schedule).
struct SearchOutcome {
  std::vector<ShapeCandidate> ranked;     ///< sorted, trimmed (as before)
  std::vector<SkippedCandidate> skipped;  ///< generation order
  std::size_t total_candidates = 0;  ///< generated for evaluation
  std::size_t evaluated = 0;         ///< completed (incl. resumed)
  std::size_t resumed = 0;           ///< filled from the checkpoint
  std::size_t retries = 0;           ///< transient-fault retry attempts
  std::uint64_t backoff_units = 0;   ///< deterministic 2^attempt accounting
  bool truncated = false;            ///< cancel/deadline stopped the sweep
  CancelReason cancel_reason = CancelReason::kNone;
  /// Per-dimension sensitivity around the base (SearchOptions::sensitivity;
  /// empty when off). Probed sequentially, so byte-identical at any
  /// --threads value.
  std::vector<DimensionSensitivity> sensitivity;

  /// Candidates never started because the sweep was cancelled.
  std::size_t unreached() const {
    return total_candidates - evaluated - skipped.size();
  }
};

enum class SearchMode { kHeads, kHidden, kJoint };
const char* search_mode_name(SearchMode mode);

/// Evaluate a config's single-layer time/throughput (shared helper).
ShapeCandidate evaluate_candidate(const TransformerConfig& config,
                                  const TransformerConfig& baseline,
                                  const gemm::GemmSimulator& sim);

/// Evaluate an arbitrary caller-built candidate grid through the shared
/// "evaluate in parallel → deterministically merge" pipeline: per-candidate
/// fault isolation, cancellation, batched GEMM estimation, and the
/// (layer_time, name) ranking — but no candidate generation, annotation,
/// or keep-filter. The raw-throughput entry point for very large sweeps
/// (the search.pipeline_batched bench pushes 10^5+ configs through it).
/// Checkpoint/resume fingerprints are the caller's responsibility here.
SearchOutcome run_grid_search(const std::vector<TransformerConfig>& configs,
                              const TransformerConfig& baseline,
                              const gemm::GemmSimulator& sim,
                              const SearchOptions& options = {});

/// The full-outcome entry point behind search_heads/search_hidden/
/// search_joint: same candidate generation and ranking, plus the skip/
/// truncation/resume record. `radius_frac`/`step` are ignored for kHeads.
/// Validates options.resume against shape_search_fingerprint() (throws
/// ConfigError on mismatch).
SearchOutcome run_shape_search(SearchMode mode, const TransformerConfig& base,
                               const gemm::GemmSimulator& sim,
                               double radius_frac = 0.1, std::int64_t step = 0,
                               const SearchOptions& options = {});

/// Identity string a checkpoint must match to resume this search: mode,
/// base config, GPU, tile policy, and the sweep grid parameters.
std::string shape_search_fingerprint(SearchMode mode,
                                     const TransformerConfig& base,
                                     const gemm::GemmSimulator& sim,
                                     double radius_frac, std::int64_t step);

/// Alternative head counts for the same h (a must divide h). Candidates are
/// ranked by predicted layer throughput; parameter count is unchanged by
/// construction. The baseline itself is always included (speedup 1.0).
std::vector<ShapeCandidate> search_heads(const TransformerConfig& base,
                                         const gemm::GemmSimulator& sim,
                                         const SearchOptions& options = {});

/// Nearby hidden sizes within ±`radius_frac` of h, stepping on multiples of
/// `step` (default 64·t), keeping a and L fixed. Parameter deltas reported.
std::vector<ShapeCandidate> search_hidden(const TransformerConfig& base,
                                          const gemm::GemmSimulator& sim,
                                          double radius_frac = 0.1,
                                          std::int64_t step = 0,
                                          const SearchOptions& options = {});

/// Joint grid search over heads × hidden: every hidden size the
/// search_hidden sweep would visit, crossed with every legal head count for
/// that hidden size (a | h, t | a, 32 <= h/a <= 256), ranked in one list.
/// Quadratically more candidates than either single sweep — run it with
/// options.threads > 1 and a cache-enabled simulator.
std::vector<ShapeCandidate> search_joint(const TransformerConfig& base,
                                         const gemm::GemmSimulator& sim,
                                         double radius_frac = 0.1,
                                         std::int64_t step = 0,
                                         const SearchOptions& options = {});

/// One d_ff candidate of the SwiGLU brute force.
struct MlpCandidate {
  std::int64_t d_ff = 0;
  double mlp_time = 0.0;      ///< up + gate + down GEMM seconds
  double mlp_tflops = 0.0;
  double coefficient = 0.0;   ///< d_ff / h
  double rank_in_range = 0.0; ///< percentile of mlp_time within the scan (0 = best)

  bool operator==(const MlpCandidate&) const = default;
};

/// Brute-force every d_ff in [lo, hi] (inclusive) that satisfies t | d_ff —
/// the scan starts at round_up(lo, t) and steps by t, so no iteration is
/// wasted on non-divisible values. Evaluates the MLP GEMM pair (plus gate
/// when SwiGLU); returns all candidates sorted by time, best first.
std::vector<MlpCandidate> search_mlp_intermediate(
    const TransformerConfig& base, const gemm::GemmSimulator& sim,
    std::int64_t lo, std::int64_t hi, const SearchOptions& options = {});

/// Full outcome of the MLP scan (skips, truncation, resume — the shape
/// analogue of run_shape_search).
struct MlpSearchOutcome {
  std::vector<MlpCandidate> ranked;       ///< sorted by time, best first
  std::vector<SkippedCandidate> skipped;  ///< config carries the failing d_ff
  std::size_t total_candidates = 0;
  std::size_t evaluated = 0;
  std::size_t resumed = 0;
  std::size_t retries = 0;
  std::uint64_t backoff_units = 0;
  bool truncated = false;
  CancelReason cancel_reason = CancelReason::kNone;
  /// See SearchOutcome::sensitivity.
  std::vector<DimensionSensitivity> sensitivity;

  std::size_t unreached() const {
    return total_candidates - evaluated - skipped.size();
  }
};

MlpSearchOutcome run_mlp_search(const TransformerConfig& base,
                                const gemm::GemmSimulator& sim,
                                std::int64_t lo, std::int64_t hi,
                                const SearchOptions& options = {});

/// Checkpoint identity for the MLP scan.
std::string mlp_search_fingerprint(const TransformerConfig& base,
                                   const gemm::GemmSimulator& sim,
                                   std::int64_t lo, std::int64_t hi);

/// Look up a specific d_ff in a scan result (e.g. Llama-2's 11008) and
/// return its percentile rank (0 = best in range). Throws if absent (a
/// LookupError) or if the scan is empty (an Error).
double mlp_candidate_percentile(const std::vector<MlpCandidate>& scan,
                                std::int64_t d_ff);

/// The vocab-padding rule: smallest multiple of 64 >= v.
std::int64_t pad_vocab(std::int64_t v);

}  // namespace codesign::advisor
