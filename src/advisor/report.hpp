// report.hpp — human-readable advisor reports.
//
// Turns the rule engine + shape searches into the "performance guide"
// artifact the paper aims to be: given a model and a GPU, print what's
// wrong with the shape, what it costs, and the best nearby fixes.
#pragma once

#include <string>

#include "gemmsim/simulator.hpp"
#include "transformer/config.hpp"

namespace codesign::advisor {

using tfm::TransformerConfig;

struct ReportOptions {
  std::int64_t pipeline_stages = 1;
  /// Include head-count and hidden-size search suggestions.
  bool include_suggestions = true;
  /// Number of alternatives listed per search.
  int suggestions_per_search = 5;
  /// Worker threads for the suggestion searches (see SearchOptions::threads).
  std::size_t search_threads = 1;
};

/// Full advisor report: config summary, per-GEMM breakdown, rule table,
/// and (optionally) ranked re-shape suggestions with predicted speedups.
std::string advise(const TransformerConfig& config,
                   const gemm::GemmSimulator& sim,
                   const ReportOptions& options = {});

}  // namespace codesign::advisor
