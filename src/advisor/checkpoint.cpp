#include "advisor/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace codesign::advisor {

namespace {

constexpr const char* kMagic = "codesign-checkpoint";
constexpr const char* kVersion = "v1";

/// Bit-exact double serialization: C99 hexfloat, parsed back by strtod.
std::string hex_double(double v) { return str_format("%a", v); }

double parse_hex_double(const std::string& s, const std::string& context) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size()) {
    throw ConfigError("checkpoint: bad number '" + s + "' in " + context);
  }
  return v;
}

std::int64_t parse_key_int(const std::string& s, const std::string& context) {
  try {
    return parse_int(s);
  } catch (const Error& e) {
    throw ConfigError("checkpoint: " + std::string(e.what()) + " in " +
                      context);
  }
}

/// Keys and reasons live in a tab-separated format: collapse the
/// separators out of free-form text before writing.
std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

}  // namespace

SearchCheckpoint SearchCheckpoint::load(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) {
    throw ConfigError("checkpoint: cannot open '" + path +
                      "' (nothing to resume from?)");
  }
  SearchCheckpoint cp;
  std::string line;
  std::size_t lineno = 0;
  bool saw_header = false;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::string context =
        path + ":" + std::to_string(lineno);
    const std::vector<std::string> fields = split(line, '\t');
    if (!saw_header) {
      if (fields.size() != 2 || fields[0] != kMagic || fields[1] != kVersion) {
        throw ConfigError("checkpoint: '" + path +
                          "' is not a codesign-checkpoint v1 file");
      }
      saw_header = true;
      continue;
    }
    const std::string& kind = fields[0];
    if (kind == "F" && fields.size() == 2) {
      cp.fingerprint_ = fields[1];
    } else if (kind == "C" && fields.size() == 8) {
      CheckpointShapeEntry e;
      e.layer_time = parse_hex_double(fields[2], context);
      e.layer_tflops = parse_hex_double(fields[3], context);
      e.speedup_vs_base = parse_hex_double(fields[4], context);
      e.param_count = parse_hex_double(fields[5], context);
      e.param_delta_frac = parse_hex_double(fields[6], context);
      e.rules_pass = fields[7] == "1";
      cp.shapes_[fields[1]] = e;
    } else if (kind == "M" && fields.size() == 5) {
      CheckpointMlpEntry e;
      e.mlp_time = parse_hex_double(fields[2], context);
      e.mlp_tflops = parse_hex_double(fields[3], context);
      e.coefficient = parse_hex_double(fields[4], context);
      cp.mlps_[parse_key_int(fields[1], context)] = e;
    } else if (kind == "S" && fields.size() == 4) {
      CheckpointSkipEntry e;
      e.attempts = static_cast<int>(parse_key_int(fields[2], context));
      e.reason = fields[3];
      cp.skips_[fields[1]] = e;
    } else {
      throw ConfigError("checkpoint: malformed record at " + context);
    }
  }
  if (!saw_header) {
    throw ConfigError("checkpoint: '" + path + "' is empty");
  }
  return cp;
}

const CheckpointShapeEntry* SearchCheckpoint::shape(
    const std::string& name) const {
  const auto it = shapes_.find(name);
  return it == shapes_.end() ? nullptr : &it->second;
}

const CheckpointMlpEntry* SearchCheckpoint::mlp(std::int64_t d_ff) const {
  const auto it = mlps_.find(d_ff);
  return it == mlps_.end() ? nullptr : &it->second;
}

const CheckpointSkipEntry* SearchCheckpoint::skip(
    const std::string& key) const {
  const auto it = skips_.find(key);
  return it == skips_.end() ? nullptr : &it->second;
}

CheckpointWriter::CheckpointWriter(std::string path, std::string fingerprint,
                                   std::size_t flush_every)
    : path_(std::move(path)),
      fingerprint_(sanitize(std::move(fingerprint))),
      flush_every_(flush_every == 0 ? 1 : flush_every) {
  CODESIGN_CHECK(!path_.empty(), "checkpoint path must not be empty");
}

CheckpointWriter::~CheckpointWriter() {
  try {
    flush();
  } catch (...) {
    // Destructor flush is best effort; the sweep outcome already left.
  }
}

void CheckpointWriter::seed_from(const SearchCheckpoint& resumed) {
  if (resumed.fingerprint() != fingerprint_) {
    throw ConfigError(
        "checkpoint fingerprint mismatch: file was written by a different "
        "search (file: '" +
        resumed.fingerprint() + "', this run: '" + fingerprint_ + "')");
  }
  std::lock_guard<std::mutex> lock(mu_);
  shapes_.insert(resumed.shapes_.begin(), resumed.shapes_.end());
  mlps_.insert(resumed.mlps_.begin(), resumed.mlps_.end());
  skips_.insert(resumed.skips_.begin(), resumed.skips_.end());
}

void CheckpointWriter::record_shape(const std::string& name,
                                    const CheckpointShapeEntry& e) {
  std::lock_guard<std::mutex> lock(mu_);
  shapes_[sanitize(name)] = e;
  ++unflushed_;
  maybe_flush_locked();
}

void CheckpointWriter::record_mlp(std::int64_t d_ff,
                                  const CheckpointMlpEntry& e) {
  std::lock_guard<std::mutex> lock(mu_);
  mlps_[d_ff] = e;
  ++unflushed_;
  maybe_flush_locked();
}

void CheckpointWriter::record_skip(const std::string& key,
                                   const CheckpointSkipEntry& e) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckpointSkipEntry clean = e;
  clean.reason = sanitize(clean.reason);
  skips_[sanitize(key)] = clean;
  ++unflushed_;
  maybe_flush_locked();
}

void CheckpointWriter::maybe_flush_locked() {
  if (unflushed_ < flush_every_) return;
  const std::string doc = render_locked();
  unflushed_ = 0;
  // Hold the lock through the write: flushes are rare (every flush_every
  // completions) and an interleaved rename could persist a stale set.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    CODESIGN_CHECK(f.good(), "cannot open '" + tmp + "' for writing");
    f << doc;
    f.flush();
    CODESIGN_CHECK(f.good(), "failed writing '" + tmp + "'");
  }
  CODESIGN_CHECK(std::rename(tmp.c_str(), path_.c_str()) == 0,
                 "cannot rename '" + tmp + "' to '" + path_ + "'");
}

std::string CheckpointWriter::render_locked() const {
  std::ostringstream os;
  os << kMagic << '\t' << kVersion << '\n';
  os << "F\t" << fingerprint_ << '\n';
  for (const auto& [name, e] : shapes_) {
    os << "C\t" << name << '\t' << hex_double(e.layer_time) << '\t'
       << hex_double(e.layer_tflops) << '\t' << hex_double(e.speedup_vs_base)
       << '\t' << hex_double(e.param_count) << '\t'
       << hex_double(e.param_delta_frac) << '\t' << (e.rules_pass ? 1 : 0)
       << '\n';
  }
  for (const auto& [d_ff, e] : mlps_) {
    os << "M\t" << d_ff << '\t' << hex_double(e.mlp_time) << '\t'
       << hex_double(e.mlp_tflops) << '\t' << hex_double(e.coefficient)
       << '\n';
  }
  for (const auto& [key, e] : skips_) {
    os << "S\t" << key << '\t' << e.attempts << '\t' << e.reason << '\n';
  }
  return os.str();
}

void CheckpointWriter::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  unflushed_ = flush_every_;  // force
  maybe_flush_locked();
}

}  // namespace codesign::advisor
