// designer.hpp — design a model architecture from a parameter budget.
//
// The paper closes with "this paper can be used to guide future model
// design". This module is that workflow end to end: given a target
// parameter count and a GPU, enumerate (h, a, L) combinations that
//   * hit the budget within a tolerance (via P ≈ 12h²L + embeddings),
//   * satisfy every §VI-B sizing rule (h on the 64·t granule, h/a on an
//     efficient head dimension, padded vocab, t | a),
//   * keep the depth/width aspect ratio in the empirically-sane band
//     (GPT-3 family spans roughly h/L ≈ 32 … 210; the designer exposes
//     the band as an option),
// and rank them by predicted training-step throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "gemmsim/simulator.hpp"
#include "transformer/config.hpp"

namespace codesign::advisor {

using tfm::TransformerConfig;

struct DesignConstraints {
  double param_budget = 0.0;        ///< target parameter count (required)
  double param_tolerance = 0.10;    ///< acceptable |actual-target|/target
  std::int64_t seq_len = 2048;
  std::int64_t microbatch = 4;
  std::int64_t vocab_size = 50304;  ///< will be padded to 64 if needed
  std::int64_t tensor_parallel = 1;
  /// Head dimensions the designer will consider (all 64-aligned).
  std::vector<std::int64_t> head_dims = {64, 128};
  /// Width-to-depth band: h/L must land in [min, max].
  double min_aspect = 24.0;
  double max_aspect = 216.0;
  /// Keep at most this many designs (best first).
  std::size_t max_designs = 12;
};

struct Design {
  TransformerConfig config;
  double param_count = 0.0;
  double param_error_frac = 0.0;   ///< (actual - budget) / budget
  double step_tflops = 0.0;        ///< training-step model TFLOP/s
  double mfu = 0.0;
  double aspect = 0.0;             ///< h / L
};

/// Enumerate and rank designs. Throws ConfigError when the budget is not
/// positive or the constraints admit no design.
std::vector<Design> design_models(const DesignConstraints& constraints,
                                  const gemm::GemmSimulator& sim);

}  // namespace codesign::advisor
