#include "advisor/attribution_report.hpp"

#include <ostream>
#include <sstream>

#include "common/json.hpp"
#include "transformer/attribution.hpp"

namespace codesign::advisor {

namespace {

const char* tile_policy_name(gemm::TilePolicy p) {
  return p == gemm::TilePolicy::kAuto ? "auto" : "fixed_largest";
}

void write_breakdown(json::Writer& w, const gemm::BoundBreakdown& b) {
  w.begin_object()
      .member("bound", gemm::bound_name(b.bound))
      .member("compute", b.compute)
      .member("memory", b.memory)
      .member("launch", b.launch)
      .member("tile_waste", b.tile_waste)
      .member("wave_tail", b.wave_tail)
      .end_object();
}

void write_families(json::Writer& w,
                    const std::vector<tfm::FamilyAttribution>& families,
                    json::Writer::Style style) {
  w.begin_array(style);
  for (const tfm::FamilyAttribution& f : families) {
    w.begin_object()
        .member("op", f.name)
        .member("count", static_cast<unsigned long long>(f.count))
        .member("time_s", f.time)
        .member("share", f.share)
        .member("bound", gemm::bound_name(f.bound));
    w.key("breakdown");
    write_breakdown(w, f.breakdown);
    w.member("detail", f.detail).end_object();
  }
  w.end_array();
}

void write_histogram(json::Writer& w, const tfm::BoundHistogram& h) {
  w.begin_array();
  for (int i = 0; i < 3; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    w.begin_object()
        .member("bound", gemm::bound_name(static_cast<gemm::Bound>(i)))
        .member("ops", static_cast<unsigned long long>(h.count[idx]))
        .member("time_s", h.time[idx])
        .end_object();
  }
  w.end_array();
}

}  // namespace

void write_attribution_report(
    std::ostream& os, const tfm::TransformerConfig& config,
    const gemm::GemmSimulator& sim,
    const std::vector<DimensionSensitivity>& sensitivity, bool compact) {
  const tfm::ModelAttribution m = tfm::attribute_model(config, sim);
  const double lt = m.layer.total_time;
  const json::Writer::Style spine =
      compact ? json::Writer::Style::kCompact : json::Writer::Style::kPretty;

  json::Writer w(os);
  w.begin_object(spine)
      .member("report", kAttributionReportName)
      .member("version", kAttributionReportVersion)
      .member("model", config.name)
      .member("config", config.to_string())
      .member("gpu", sim.gpu().id)
      .member("tile_policy", tile_policy_name(sim.policy()));

  w.key("totals")
      .begin_object()
      .member("total_time_s", m.total_time)
      .member("layer_time_s", m.layer.total_time)
      .member("layer_gemm_time_s", m.layer.gemm_time)
      .member("layer_non_gemm_time_s", m.layer.non_gemm_time)
      .member("embedding_time_s", m.embedding_time)
      .member("final_ln_time_s", m.final_ln_time)
      .member("logit_time_s", m.logit_time)
      .end_object();

  w.key("layer_split")
      .begin_object()
      .member("attention", lt > 0.0 ? m.layer.attention_time / lt : 0.0)
      .member("mlp", lt > 0.0 ? m.layer.mlp_time / lt : 0.0)
      .member("other", lt > 0.0 ? m.layer.other_time / lt : 0.0)
      .end_object();

  w.key("breakdown");
  write_breakdown(w, m.breakdown);

  w.key("layer").begin_object(spine);
  w.key("breakdown");
  write_breakdown(w, m.layer.breakdown);
  w.key("bound_histogram");
  write_histogram(w, m.layer.histogram);
  w.key("gemms");
  write_families(w, m.layer.gemms, spine);
  w.end_object();

  w.key("model_gemms");
  write_families(w, m.gemms, spine);

  w.key("model_bound_histogram");
  write_histogram(w, m.histogram);

  w.key("sensitivity").begin_array(spine);
  for (const DimensionSensitivity& s : sensitivity) {
    w.begin_object()
        .member("dimension", s.dimension)
        .member("probed", s.probed)
        .member("base_value", s.base_value)
        .member("probe_value", s.probe_value)
        .member("base_time_s", s.base_time)
        .member("probe_time_s", s.probe_time)
        .member("delta_frac", s.delta_frac)
        .member("note", s.note)
        .end_object();
  }
  w.end_array();

  w.end_object();
  if (!compact) os << "\n";
}

std::string attribution_report(
    const tfm::TransformerConfig& config, const gemm::GemmSimulator& sim,
    const std::vector<DimensionSensitivity>& sensitivity, bool compact) {
  std::ostringstream os;
  write_attribution_report(os, config, sim, sensitivity, compact);
  return os.str();
}

}  // namespace codesign::advisor
