#include "advisor/designer.hpp"

#include <algorithm>
#include <cmath>

#include "advisor/rules.hpp"
#include "advisor/search.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "transformer/params.hpp"
#include "transformer/training.hpp"

namespace codesign::advisor {

std::vector<Design> design_models(const DesignConstraints& c,
                                  const gemm::GemmSimulator& sim) {
  if (c.param_budget <= 0.0) {
    throw ConfigError("designer: param_budget must be positive");
  }
  if (c.head_dims.empty()) {
    throw ConfigError("designer: need at least one candidate head dim");
  }
  if (c.min_aspect <= 0.0 || c.max_aspect < c.min_aspect) {
    throw ConfigError("designer: bad aspect band");
  }

  const std::int64_t t = std::max<std::int64_t>(1, c.tensor_parallel);
  const std::int64_t vocab = pad_vocab(c.vocab_size);
  const std::int64_t h_step = 64 * t;

  // h range: solve 12h²L = budget at the aspect-band extremes
  // (L = h/aspect ⇒ h³ = budget·aspect/12).
  const auto h_from_aspect = [&c](double aspect) {
    return std::cbrt(c.param_budget * aspect / 12.0);
  };
  const std::int64_t h_lo = std::max<std::int64_t>(
      h_step, round_down(static_cast<std::int64_t>(h_from_aspect(c.min_aspect)),
                         h_step));
  const std::int64_t h_hi = round_up(
      static_cast<std::int64_t>(h_from_aspect(c.max_aspect)), h_step);

  std::vector<Design> designs;
  for (std::int64_t h = h_lo; h <= h_hi; h += h_step) {
    // Depth from the leading-order budget, then exact-count corrected.
    const auto l_guess = static_cast<std::int64_t>(
        std::llround(c.param_budget / (12.0 * static_cast<double>(h) * h)));
    for (std::int64_t l = std::max<std::int64_t>(1, l_guess - 1);
         l <= l_guess + 1; ++l) {
      const double aspect = static_cast<double>(h) / static_cast<double>(l);
      if (aspect < c.min_aspect || aspect > c.max_aspect) continue;
      for (const std::int64_t head_dim : c.head_dims) {
        if (h % head_dim != 0) continue;
        const std::int64_t a = h / head_dim;
        if (a % t != 0) continue;

        TransformerConfig cfg;
        cfg.name = str_format("design-h%lld-a%lld-L%lld",
                              static_cast<long long>(h),
                              static_cast<long long>(a),
                              static_cast<long long>(l));
        cfg.hidden_size = h;
        cfg.num_heads = a;
        cfg.num_layers = l;
        cfg.seq_len = c.seq_len;
        cfg.microbatch = c.microbatch;
        cfg.vocab_size = vocab;
        cfg.tensor_parallel = t;
        cfg.validate();

        Design d;
        d.config = cfg;
        d.param_count = static_cast<double>(tfm::exact_param_count(cfg));
        d.param_error_frac =
            (d.param_count - c.param_budget) / c.param_budget;
        if (std::fabs(d.param_error_frac) > c.param_tolerance) continue;

        RuleContext ctx;
        ctx.gpu = &sim.gpu();
        if (!satisfies_performance_rules(cfg, ctx)) continue;

        const tfm::TrainingStepReport step =
            tfm::analyze_training_step(cfg, sim);
        d.step_tflops = step.model_tflops;
        d.mfu = step.mfu;
        d.aspect = aspect;
        designs.push_back(std::move(d));
      }
    }
  }

  if (designs.empty()) {
    throw ConfigError(
        "designer: no (h, a, L) satisfies the budget, rules, and aspect "
        "band — widen param_tolerance or the aspect band");
  }
  std::sort(designs.begin(), designs.end(),
            [](const Design& a, const Design& b) {
              return a.step_tflops > b.step_tflops;
            });
  // De-duplicate identical (h, L) with different head dims only if they
  // tie exactly; otherwise keep both (the ranking is the information).
  if (designs.size() > c.max_designs) designs.resize(c.max_designs);
  return designs;
}

}  // namespace codesign::advisor
