#include "advisor/rules.hpp"

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"

namespace codesign::advisor {

const char* severity_name(RuleSeverity s) {
  switch (s) {
    case RuleSeverity::kCritical: return "critical";
    case RuleSeverity::kPerf: return "perf";
    case RuleSeverity::kAdvisory: return "advisory";
  }
  return "?";
}

const char* rule_name(RuleId id) {
  switch (id) {
    case RuleId::kVocabDivisibleBy64: return "vocab_divisible_by_64";
    case RuleId::kHeadDimPow2: return "head_dim_pow2";
    case RuleId::kHiddenPerTpPow2: return "hidden_per_tp_pow2";
    case RuleId::kMlpIntermediatePow2: return "mlp_intermediate_pow2";
    case RuleId::kTokensPow2: return "tokens_pow2";
    case RuleId::kHeadsPerTpIntegral: return "heads_per_tp_integral";
    case RuleId::kMicrobatchLarge: return "microbatch_large";
    case RuleId::kTensorParallelSmall: return "tensor_parallel_small";
    case RuleId::kLayersDivisibleByPipeline:
      return "layers_divisible_by_pipeline";
  }
  return "?";
}

namespace {

/// The element granule at which the GPU's tensor cores reach full
/// efficiency (64 fp16 elements on A100/H100; 8 on V100). Defaults to the
/// A100 value when no GPU is supplied, matching the paper's headline rule.
std::int64_t full_granule_elems(const RuleContext& ctx,
                                const TransformerConfig& c) {
  const std::int64_t esize =
      static_cast<std::int64_t>(gpu::dtype_size(c.dtype));
  const std::int64_t bytes =
      ctx.gpu != nullptr ? ctx.gpu->tc_full_alignment_bytes : 128;
  return std::max<std::int64_t>(1, bytes / esize);
}

/// Rule 3's predicate: the largest power of two dividing `value` reaches
/// the tensor-core granule. Shared by check_rules and the messageless
/// satisfies_performance_rules fast path.
bool pow2_granule_ok(std::int64_t value, std::int64_t granule) {
  return static_cast<std::int64_t>(largest_pow2_dividing(value)) >= granule;
}

RuleResult divisibility_rule(RuleId id, RuleSeverity severity,
                             const std::string& what, std::int64_t value,
                             std::int64_t granule) {
  RuleResult r;
  r.id = id;
  r.severity = severity;
  const std::int64_t p2 =
      static_cast<std::int64_t>(largest_pow2_dividing(value));
  r.metric = static_cast<double>(p2);
  r.passed = pow2_granule_ok(value, granule);
  r.message = str_format(
      "%s = %lld; largest power of two dividing it is %lld (want >= %lld)",
      what.c_str(), static_cast<long long>(value), static_cast<long long>(p2),
      static_cast<long long>(granule));
  return r;
}

}  // namespace

std::vector<RuleResult> check_rules(const TransformerConfig& c,
                                    const RuleContext& ctx) {
  c.validate();
  CODESIGN_CHECK(ctx.pipeline_stages >= 1, "pipeline_stages must be >= 1");
  const std::int64_t granule = full_granule_elems(ctx, c);
  std::vector<RuleResult> out;

  // Rule 1: vocabulary divisible by 64 (paper's number is dtype-agnostic).
  {
    RuleResult r;
    r.id = RuleId::kVocabDivisibleBy64;
    r.severity = RuleSeverity::kPerf;
    r.passed = c.vocab_size % 64 == 0;
    r.metric = static_cast<double>(c.vocab_size % 64);
    r.message = str_format(
        "v = %lld is %sdivisible by 64%s",
        static_cast<long long>(c.vocab_size), r.passed ? "" : "NOT ",
        r.passed ? ""
                 : str_format("; pad to %lld", static_cast<long long>(
                                                   round_up<std::int64_t>(
                                                       c.vocab_size, 64)))
                       .c_str());
    out.push_back(r);
  }

  // Rule 3a/3b/3c: power-of-two divisibility of h/a, h/t, and b·s.
  out.push_back(divisibility_rule(RuleId::kHeadDimPow2, RuleSeverity::kPerf,
                                  "h/a", c.head_dim(), granule));
  out.push_back(divisibility_rule(RuleId::kHiddenPerTpPow2,
                                  RuleSeverity::kPerf, "h/t",
                                  c.hidden_per_tp(), granule));
  out.push_back(divisibility_rule(RuleId::kTokensPow2, RuleSeverity::kPerf,
                                  "b*s", c.tokens(), granule));
  // §VII-B: the MLP intermediate width is a GEMM dimension too — SwiGLU's
  // literal round(8h/3) lands on an odd number and breaks it.
  out.push_back(divisibility_rule(RuleId::kMlpIntermediatePow2,
                                  RuleSeverity::kPerf, "d_ff/t",
                                  c.d_ff() / c.tensor_parallel, granule));

  // Rule 4: (b·a)/t integral. TransformerConfig::validate() already enforces
  // the stronger t | a, so this reports the margin.
  {
    RuleResult r;
    r.id = RuleId::kHeadsPerTpIntegral;
    r.severity = RuleSeverity::kCritical;
    const std::int64_t ba = c.microbatch * c.num_heads;
    r.passed = ba % c.tensor_parallel == 0;
    r.metric = static_cast<double>(ba / c.tensor_parallel);
    r.message = str_format("(b*a)/t = %lld*%lld/%lld is %s",
                           static_cast<long long>(c.microbatch),
                           static_cast<long long>(c.num_heads),
                           static_cast<long long>(c.tensor_parallel),
                           r.passed ? "integral" : "NOT integral");
    out.push_back(r);
  }

  // Rule 2: b as large as possible (advisory — memory capacity decides the
  // ceiling; we flag conspicuously small values).
  {
    RuleResult r;
    r.id = RuleId::kMicrobatchLarge;
    r.severity = RuleSeverity::kAdvisory;
    r.passed = c.microbatch >= 2;
    r.metric = static_cast<double>(c.microbatch);
    r.message = str_format(
        "b = %lld; larger microbatches improve GEMM efficiency until memory "
        "is exhausted (b itself need not be a power of two: s = %lld already "
        "carries the alignment)",
        static_cast<long long>(c.microbatch),
        static_cast<long long>(c.seq_len));
    out.push_back(r);
  }

  // Rule 5: t as small as possible (advisory).
  {
    RuleResult r;
    r.id = RuleId::kTensorParallelSmall;
    r.severity = RuleSeverity::kAdvisory;
    r.passed = c.tensor_parallel <= 8;
    r.metric = static_cast<double>(c.tensor_parallel);
    r.message = str_format(
        "t = %lld; tensor parallelism shrinks per-GPU GEMMs, so use the "
        "smallest t that fits memory",
        static_cast<long long>(c.tensor_parallel));
    out.push_back(r);
  }

  // Rule 6: layers divisible by pipeline stages.
  {
    RuleResult r;
    r.id = RuleId::kLayersDivisibleByPipeline;
    r.severity =
        ctx.pipeline_stages > 1 ? RuleSeverity::kPerf : RuleSeverity::kAdvisory;
    r.passed = c.num_layers % ctx.pipeline_stages == 0;
    r.metric = static_cast<double>(c.num_layers % ctx.pipeline_stages);
    r.message = str_format("L = %lld %% pipeline stages %lld = %lld",
                           static_cast<long long>(c.num_layers),
                           static_cast<long long>(ctx.pipeline_stages),
                           static_cast<long long>(c.num_layers %
                                                  ctx.pipeline_stages));
    out.push_back(r);
  }

  return out;
}

bool satisfies_performance_rules(const TransformerConfig& config,
                                 const RuleContext& ctx) {
  // The same pass/fail verdict a fold over check_rules() gives, without
  // formatting any of the diagnostic messages — this predicate runs once
  // per candidate on the search hot path. Advisory rules (2: microbatch
  // size, 5: tensor-parallel width) never affect the verdict and are
  // skipped outright. test_rules asserts agreement with check_rules.
  config.validate();
  CODESIGN_CHECK(ctx.pipeline_stages >= 1, "pipeline_stages must be >= 1");
  const std::int64_t granule = full_granule_elems(ctx, config);
  if (config.vocab_size % 64 != 0) return false;                 // rule 1
  if (!pow2_granule_ok(config.head_dim(), granule)) return false;      // 3a
  if (!pow2_granule_ok(config.hidden_per_tp(), granule)) return false; // 3b
  if (!pow2_granule_ok(config.tokens(), granule)) return false;        // 3c
  if (!pow2_granule_ok(config.d_ff() / config.tensor_parallel, granule)) {
    return false;                                                // §VII-B
  }
  if ((config.microbatch * config.num_heads) % config.tensor_parallel != 0) {
    return false;                                                // rule 4
  }
  // Rule 6 is only non-advisory when pipeline parallelism is actually on.
  if (ctx.pipeline_stages > 1 &&
      config.num_layers % ctx.pipeline_stages != 0) {
    return false;
  }
  return true;
}

int count_failures(const std::vector<RuleResult>& results,
                   RuleSeverity min_severity) {
  int n = 0;
  for (const RuleResult& r : results) {
    if (!r.passed &&
        static_cast<int>(r.severity) <= static_cast<int>(min_severity)) {
      ++n;
    }
  }
  return n;
}

}  // namespace codesign::advisor
