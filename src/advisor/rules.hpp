// rules.hpp — the paper's §VI-B sizing rules as a checkable rule engine.
//
// "Therefore to ensure the best performance from transformer models,
//  ensure:
//   * the vocabulary size should be divisible by 64;
//   * the microbatch size b should be as large as possible;
//   * b·s, h/a, and h/t should be divisible by a power of two, though
//     there is no further benefit to going beyond 64;
//   * (b·a)/t should be an integer;
//   * t should be as small as possible;
//   * [with pipeline parallelism] the number of layers should be divisible
//     by the number of pipeline stages."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpuarch/gpu_spec.hpp"
#include "transformer/config.hpp"

namespace codesign::advisor {

using tfm::TransformerConfig;

enum class RuleSeverity {
  kCritical,  ///< structurally required (integral (b·a)/t, t | h)
  kPerf,      ///< violating it measurably costs throughput
  kAdvisory   ///< directional guidance ("b as large as memory allows")
};

const char* severity_name(RuleSeverity s);

enum class RuleId {
  kVocabDivisibleBy64,
  kHeadDimPow2,       ///< h/a divisible by a power of two (64 is enough)
  kHiddenPerTpPow2,   ///< h/t divisible by a power of two (64 is enough)
  kMlpIntermediatePow2,  ///< d_ff/t on the granule — the §VII-B SwiGLU trap
  kTokensPow2,        ///< b·s divisible by a large power of two
  kHeadsPerTpIntegral,///< (b·a)/t integral (we require the stronger t | a)
  kMicrobatchLarge,   ///< advisory
  kTensorParallelSmall,  ///< advisory
  kLayersDivisibleByPipeline,
};

const char* rule_name(RuleId id);

struct RuleResult {
  RuleId id;
  RuleSeverity severity;
  bool passed = false;
  std::string message;   ///< human-readable explanation with the numbers
  double metric = 0.0;   ///< rule-specific figure (e.g. pow2 granule of h/a)
};

struct RuleContext {
  /// The GPU the model will run on; its alignment requirement decides what
  /// "divisible enough" means (64 fp16 elements on A100, 8 on V100).
  const gpu::GpuSpec* gpu = nullptr;
  /// Pipeline-parallel stages for the layer-divisibility rule (1 = off).
  std::int64_t pipeline_stages = 1;
};

/// Evaluate every rule against the configuration.
std::vector<RuleResult> check_rules(const TransformerConfig& config,
                                    const RuleContext& ctx);

/// True iff every kCritical and kPerf rule passes.
bool satisfies_performance_rules(const TransformerConfig& config,
                                 const RuleContext& ctx);

/// Count of failed rules at or above a severity.
int count_failures(const std::vector<RuleResult>& results,
                   RuleSeverity min_severity);

}  // namespace codesign::advisor
