// driver.hpp — run the scenario matrix through the search machinery.
//
// The SweepDriver walks the plan's cells in a fixed order — workloads in
// file order, GPUs in file order within each workload — and evaluates each
// cell's variants through advisor::run_grid_search: per-candidate fault
// isolation, transient retries, cancellation, the shared EstimateCache,
// and the thread pool all come from that one pipeline, so a sweep inherits
// the search's determinism guarantee (byte-identical results at any thread
// count or cache state).
//
// Checkpoint/resume reuses the search checkpoint format: the whole matrix
// shares one CheckpointWriter keyed by cell-unique variant names
// ("workload/label@gpu"), so an interrupted sweep resumes bit-exactly —
// the report of a resumed run is byte-identical to an uninterrupted one.
//
// Failure drill: each cell passes the "sweep.cell" failpoint (keyed by
// "workload@gpu") before any variant runs; an armed fault aborts the sweep
// there, which is exactly the interruption check.sh's resume drill injects.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "advisor/checkpoint.hpp"
#include "advisor/search.hpp"
#include "common/cancel.hpp"
#include "gemmsim/estimate_cache.hpp"
#include "gemmsim/simulator.hpp"
#include "sweep/plan.hpp"
#include "transformer/attribution.hpp"

namespace codesign::sweep {

struct SweepOptions {
  std::size_t threads = 1;
  gemm::TilePolicy policy = gemm::TilePolicy::kAuto;
  /// Shared across every cell (and safe to share across GPUs: cache keys
  /// include the GpuSpec). Null leaves estimation uncached.
  std::shared_ptr<gemm::EstimateCache> cache;
  advisor::FaultPolicy faults;
  const CancelToken* cancel = nullptr;
  /// Both optional; the caller owns fingerprint validation via
  /// sweep_fingerprint (same contract as run_grid_search).
  advisor::CheckpointWriter* checkpoint = nullptr;
  const advisor::SearchCheckpoint* resume = nullptr;
};

/// One evaluated variant of one cell.
struct SweepVariantResult {
  std::string label;
  std::string note;
  tfm::TransformerConfig config;
  double layer_time = 0.0;       ///< seconds, one layer
  double layer_tflops = 0.0;
  double time_per_token = 0.0;   ///< layer_time / config.tokens()
  std::int64_t param_count = 0;
  bool rules_pass = true;
};

struct SweepSkip {
  std::string label;
  std::string reason;
  int attempts = 1;
};

/// One (workload, gpu) cell. `variants` is sorted by (time_per_token,
/// label) — a total order, so the winner (index 0 when non-empty) is
/// deterministic. `attribution` explains the winner's forward pass.
struct SweepCell {
  std::string workload;
  std::string family;
  std::string gpu;
  std::vector<SweepVariantResult> variants;
  std::vector<SweepSkip> skipped;  ///< generation order
  tfm::ModelAttribution attribution;  ///< valid iff !variants.empty()
};

struct SweepResult {
  std::string name;
  gemm::TilePolicy policy = gemm::TilePolicy::kAuto;
  std::vector<std::string> gpus;
  struct WorkloadMeta {
    std::string name;
    std::string family;
    std::string base;  ///< base config spec string
    std::size_t variants = 0;
  };
  std::vector<WorkloadMeta> workloads;
  std::vector<SweepCell> cells;  ///< completed cells, plan order

  // Volatile run counters: *not* part of the JSON report (a resumed run
  // reports fewer fresh evaluations than an uninterrupted one, and the
  // report must stay byte-identical across that difference).
  std::size_t planned_cells = 0;
  std::size_t evaluated = 0;   ///< variants completed (incl. resumed ones)
  std::size_t resumed = 0;     ///< of which prefilled from the checkpoint
  std::size_t skipped = 0;     ///< variants skipped on faults
  std::uint64_t retries = 0;
  bool truncated = false;      ///< cancelled before the matrix completed
  CancelReason cancel_reason = CancelReason::kNone;
};

/// Run the matrix. Throws on baseline evaluation faults, strict-mode
/// candidate faults, and armed "sweep.cell" failpoints; returns a
/// truncated result (instead of throwing) on cancellation.
SweepResult run_sweep(const SweepPlan& plan, const SweepOptions& options);

}  // namespace codesign::sweep
