// report.hpp — the versioned `codesign.sweep` report and comparison table.
//
// The JSON report (schema v1, docs/SWEEP.md) is built from simulated
// quantities only — no wall-clock, no hostnames, no run counters that
// differ between a fresh and a resumed run — so the bytes are identical
// at any thread count, cache state, and across resume-after-interrupt.
// That byte-contract is what check.sh's sweep tier diffs.
//
// The human-readable table is the cross-hardware comparison the paper
// argues for: one block per workload, one row per GPU, each row showing
// the cell winner, its time/token, and the slowdown vs the best part.
#pragma once

#include <iosfwd>
#include <string>

#include "sweep/driver.hpp"

namespace codesign::sweep {

inline constexpr const char* kSweepReportName = "codesign.sweep";
inline constexpr int kSweepReportVersion = 1;

/// The `codesign.sweep` v1 JSON report. `compact` collapses the document
/// to one line for serve-envelope framing; the CLI writes the pretty form
/// (pretty spine, compact leaves) with a trailing newline.
std::string sweep_report_json(const SweepResult& result, bool compact);
void write_sweep_report(std::ostream& os, const SweepResult& result,
                        bool compact);

/// The human comparison table plus a one-line run summary (the summary
/// includes the volatile evaluated/resumed/retried counters, which is why
/// it lives on stdout and not in the JSON artifact).
void render_sweep_table(std::ostream& os, const SweepResult& result);

}  // namespace codesign::sweep
