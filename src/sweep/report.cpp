#include "sweep/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace codesign::sweep {

namespace {

const char* tile_policy_name(gemm::TilePolicy p) {
  return p == gemm::TilePolicy::kAuto ? "auto" : "fixed_largest";
}

void write_breakdown(json::Writer& w, const gemm::BoundBreakdown& b) {
  w.begin_object()
      .member("bound", gemm::bound_name(b.bound))
      .member("compute", b.compute)
      .member("memory", b.memory)
      .member("launch", b.launch)
      .member("tile_waste", b.tile_waste)
      .member("wave_tail", b.wave_tail)
      .end_object();
}

/// One ranking row: a workload's cells ordered fastest-first.
struct RankRow {
  const SweepCell* cell;
  double time_per_token;
};

std::vector<RankRow> rank_workload(const SweepResult& r,
                                   const std::string& workload) {
  std::vector<RankRow> rows;
  for (const SweepCell& c : r.cells) {
    if (c.workload != workload || c.variants.empty()) continue;
    rows.push_back({&c, c.variants.front().time_per_token});
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const RankRow& a, const RankRow& b) {
                     if (a.time_per_token != b.time_per_token) {
                       return a.time_per_token < b.time_per_token;
                     }
                     return a.cell->gpu < b.cell->gpu;
                   });
  return rows;
}

}  // namespace

void write_sweep_report(std::ostream& os, const SweepResult& r,
                        bool compact) {
  const json::Writer::Style spine =
      compact ? json::Writer::Style::kCompact : json::Writer::Style::kPretty;

  json::Writer w(os);
  w.begin_object(spine)
      .member("report", kSweepReportName)
      .member("version", kSweepReportVersion)
      .member("name", r.name)
      .member("tile_policy", tile_policy_name(r.policy))
      .member("truncated", r.truncated);

  w.key("hardware").begin_array();
  for (const std::string& g : r.gpus) w.value(g);
  w.end_array();

  w.key("workloads").begin_array(spine);
  for (const SweepResult::WorkloadMeta& m : r.workloads) {
    w.begin_object()
        .member("name", m.name)
        .member("family", m.family)
        .member("base", m.base)
        .member("variants", static_cast<unsigned long long>(m.variants))
        .end_object();
  }
  w.end_array();

  std::size_t total_variants = 0;
  std::size_t total_skipped = 0;
  w.key("cells").begin_array(spine);
  for (const SweepCell& c : r.cells) {
    total_variants += c.variants.size();
    total_skipped += c.skipped.size();
    w.begin_object(spine)
        .member("workload", c.workload)
        .member("family", c.family)
        .member("gpu", c.gpu);
    if (c.variants.empty()) {
      w.key("winner").null();
    } else {
      w.member("winner", c.variants.front().label);
    }
    w.key("variants").begin_array(spine);
    for (const SweepVariantResult& v : c.variants) {
      w.begin_object()
          .member("label", v.label)
          .member("config", v.config.to_string())
          .member("note", v.note)
          .member("layer_time_s", v.layer_time)
          .member("time_per_token_s", v.time_per_token)
          .member("layer_tflops", v.layer_tflops)
          .member("params", static_cast<long long>(v.param_count))
          .member("rules_pass", v.rules_pass)
          .end_object();
    }
    w.end_array();
    w.key("skipped").begin_array();
    for (const SweepSkip& s : c.skipped) {
      w.begin_object()
          .member("label", s.label)
          .member("reason", s.reason)
          .member("attempts", s.attempts)
          .end_object();
    }
    w.end_array();
    if (!c.variants.empty()) {
      // The winner's forward-pass attribution (PR 9's rollup): which roof
      // the cell sits on, and the attention/MLP/other split of layer time.
      const double lt = c.attribution.layer.total_time;
      w.key("winner_attribution").begin_object();
      w.key("breakdown");
      write_breakdown(w, c.attribution.breakdown);
      w.key("layer_split")
          .begin_object()
          .member("attention",
                  lt > 0.0 ? c.attribution.layer.attention_time / lt : 0.0)
          .member("mlp", lt > 0.0 ? c.attribution.layer.mlp_time / lt : 0.0)
          .member("other",
                  lt > 0.0 ? c.attribution.layer.other_time / lt : 0.0)
          .end_object();
      w.member("total_time_s", c.attribution.total_time);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();

  // Cross-hardware comparative ranking, per workload: which part runs this
  // workload's best variant fastest, and by how much the others trail.
  w.key("rankings").begin_array(spine);
  for (const SweepResult::WorkloadMeta& m : r.workloads) {
    const std::vector<RankRow> rows = rank_workload(r, m.name);
    if (rows.empty()) continue;
    const double best = rows.front().time_per_token;
    w.begin_object(spine).member("workload", m.name);
    w.key("order").begin_array(spine);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      w.begin_object()
          .member("rank", static_cast<unsigned long long>(i + 1))
          .member("gpu", rows[i].cell->gpu)
          .member("winner", rows[i].cell->variants.front().label)
          .member("time_per_token_s", rows[i].time_per_token)
          .member("slowdown_vs_best",
                  best > 0.0 ? rows[i].time_per_token / best : 0.0)
          .end_object();
    }
    w.end_array().end_object();
  }
  w.end_array();

  w.key("counters")
      .begin_object()
      .member("cells", static_cast<unsigned long long>(r.cells.size()))
      .member("variants", static_cast<unsigned long long>(total_variants))
      .member("skipped", static_cast<unsigned long long>(total_skipped))
      .end_object();

  w.end_object();
  if (!compact) os << "\n";
}

std::string sweep_report_json(const SweepResult& result, bool compact) {
  std::ostringstream os;
  write_sweep_report(os, result, compact);
  return os.str();
}

void render_sweep_table(std::ostream& os, const SweepResult& r) {
  os << "sweep '" << r.name << "': " << r.workloads.size() << " workloads x "
     << r.gpus.size() << " GPUs = " << r.planned_cells << " cells ("
     << "tile policy " << tile_policy_name(r.policy) << ")\n";
  for (const SweepResult::WorkloadMeta& m : r.workloads) {
    const std::vector<RankRow> rows = rank_workload(r, m.name);
    os << "\n== " << m.name << " (" << m.family << ", " << m.variants
       << " variants; base " << m.base << ")\n";
    if (rows.empty()) {
      os << "  (no completed cells)\n";
      continue;
    }
    const double best = rows.front().time_per_token;
    TableWriter table({"rank", "gpu", "winner", "time/token", "TFLOP/s",
                       "bound", "vs best"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepCell& c = *rows[i].cell;
      const SweepVariantResult& win = c.variants.front();
      table.new_row()
          .cell(static_cast<std::int64_t>(i + 1))
          .cell(c.gpu)
          .cell(win.label)
          .cell(human_time(win.time_per_token))
          .cell(win.layer_tflops, 1)
          .cell(std::string(gemm::bound_name(c.attribution.breakdown.bound)))
          .cell(str_format("%.2fx", best > 0.0
                                        ? rows[i].time_per_token / best
                                        : 0.0));
    }
    table.write(os);
    for (const SweepCell& c : r.cells) {
      if (c.workload != m.name || c.skipped.empty()) continue;
      for (const SweepSkip& s : c.skipped) {
        os << "  skipped " << s.label << "@" << c.gpu << " after "
           << s.attempts << " attempt(s): " << s.reason << "\n";
      }
    }
  }
  os << "\ncells " << r.cells.size() << "/" << r.planned_cells
     << ", evaluated " << r.evaluated << " variants (" << r.resumed
     << " from checkpoint), skipped " << r.skipped << ", retries "
     << r.retries << "\n";
  if (r.truncated) {
    os << "*** PARTIAL RESULTS: sweep cancelled ("
       << cancel_reason_name(r.cancel_reason)
       << ") — resume with --checkpoint/--resume ***\n";
  }
}

}  // namespace codesign::sweep
