#include "sweep/workload.hpp"

#include <set>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign::sweep {

namespace {

std::string where(const std::string& origin, int line) {
  return origin + ":" + std::to_string(line) + ": ";
}

std::int64_t entry_int(const tfm::ConfigEntry& e, const std::string& origin) {
  try {
    return parse_int(e.value);
  } catch (const Error& err) {
    throw ConfigError(where(origin, e.line) + "key '" + e.key +
                      "': " + err.what());
  }
}

/// Comma-separated positive integers, duplicates rejected: variant labels
/// derive from these values, so a duplicate would collide downstream.
std::vector<std::int64_t> entry_int_list(const tfm::ConfigEntry& e,
                                         const std::string& origin) {
  std::vector<std::int64_t> out;
  std::set<std::int64_t> seen;
  for (const std::string& part : split(e.value, ',')) {
    const std::string item{trim(part)};
    if (item.empty()) continue;
    std::int64_t v = 0;
    try {
      v = parse_int(item);
    } catch (const Error& err) {
      throw ConfigError(where(origin, e.line) + "key '" + e.key +
                        "': " + err.what());
    }
    if (v <= 0) {
      throw ConfigError(where(origin, e.line) + "key '" + e.key +
                        "': values must be positive (got " + item + ")");
    }
    if (!seen.insert(v).second) {
      throw ConfigError(where(origin, e.line) + "key '" + e.key +
                        "': duplicate value " + item);
    }
    out.push_back(v);
  }
  if (out.empty()) {
    throw ConfigError(where(origin, e.line) + "key '" + e.key +
                      "' lists no values");
  }
  return out;
}

const tfm::ConfigEntry& require_entry(const tfm::ConfigSection& s,
                                      const std::string& key,
                                      const std::string& origin) {
  if (const tfm::ConfigEntry* e = s.find(key)) return *e;
  throw ConfigError(where(origin, s.line) + "[" + s.name +
                    "] section is missing required key '" + key + "'");
}

/// Validate a lowered variant, turning a bare shape/config error into a
/// diagnostic that names the section and variant that produced it.
void validate_variant(const WorkloadSpec& wl, const WorkloadVariant& v,
                      const tfm::ConfigSection& s, const std::string& origin) {
  try {
    v.config.validate();
  } catch (const Error& e) {
    throw ConfigError(where(origin, s.line) + "workload '" + wl.name +
                      "' variant '" + v.label + "': " + e.what());
  }
}

void lower_decoder(WorkloadSpec& wl, const tfm::ConfigSection& s,
                   const std::string& origin) {
  std::vector<std::int64_t> hiddens{0};  // 0 = keep the base value
  std::vector<std::int64_t> heads{0};
  if (const tfm::ConfigEntry* e = s.find("hidden")) {
    hiddens = entry_int_list(*e, origin);
  }
  if (const tfm::ConfigEntry* e = s.find("heads")) {
    heads = entry_int_list(*e, origin);
  }
  for (const std::int64_t h : hiddens) {
    for (const std::int64_t a : heads) {
      WorkloadVariant v;
      v.config = wl.base;
      if (h > 0) v.config = v.config.with_hidden(h);
      if (a > 0) v.config = v.config.with_heads(a);
      if (h > 0 && a > 0) {
        v.label = str_format("h%lld-a%lld", static_cast<long long>(h),
                             static_cast<long long>(a));
      } else if (h > 0) {
        v.label = str_format("h%lld", static_cast<long long>(h));
      } else if (a > 0) {
        v.label = str_format("a%lld", static_cast<long long>(a));
      } else {
        v.label = "base";
      }
      v.note = str_format("h/a=%lld",
                          static_cast<long long>(v.config.head_dim()));
      wl.variants.push_back(std::move(v));
    }
  }
}

void lower_gqa(WorkloadSpec& wl, const tfm::ConfigSection& s,
               const std::string& origin) {
  const tfm::ConfigEntry& e = require_entry(s, "kv_ratios", origin);
  for (const std::int64_t ratio : entry_int_list(e, origin)) {
    if (wl.base.num_heads % ratio != 0) {
      throw ConfigError(
          where(origin, e.line) +
          str_format("kv_ratio %lld does not divide %lld query heads",
                     static_cast<long long>(ratio),
                     static_cast<long long>(wl.base.num_heads)));
    }
    const std::int64_t kv = wl.base.num_heads / ratio;
    WorkloadVariant v;
    v.config = wl.base;
    v.config.num_kv_heads = kv;
    v.label = str_format("kv%lld", static_cast<long long>(kv));
    v.note = str_format("%lld query heads per KV head%s",
                        static_cast<long long>(ratio),
                        ratio == 1 ? " (MHA)" : (kv == 1 ? " (MQA)" : ""));
    wl.variants.push_back(std::move(v));
  }
}

void lower_moe(WorkloadSpec& wl, const tfm::ConfigSection& s,
               const std::string& origin) {
  std::vector<std::int64_t> experts{8};
  std::vector<std::int64_t> top_ks{2};
  std::int64_t expert_dff = wl.base.d_ff();
  if (const tfm::ConfigEntry* e = s.find("experts")) {
    experts = entry_int_list(*e, origin);
  }
  if (const tfm::ConfigEntry* e = s.find("top_k")) {
    top_ks = entry_int_list(*e, origin);
  }
  if (const tfm::ConfigEntry* e = s.find("expert_dff")) {
    expert_dff = entry_int(*e, origin);
    if (expert_dff <= 0) {
      throw ConfigError(where(origin, e->line) +
                        "key 'expert_dff' must be positive");
    }
  }
  for (const std::int64_t n : experts) {
    for (const std::int64_t k : top_ks) {
      if (k > n) {
        throw ConfigError(
            where(origin, s.line) +
            str_format("moe top_k %lld exceeds expert count %lld",
                       static_cast<long long>(k), static_cast<long long>(n)));
      }
      // Dense-equivalent lowering: the latency model scores the *activated*
      // MLP width (top_k experts of expert_dff each). Routing overhead and
      // the n-expert weight footprint are out of scope; n is kept in the
      // label/note so the report still distinguishes the configurations.
      WorkloadVariant v;
      v.config = wl.base;
      v.config.mlp_intermediate = k * expert_dff;
      v.label = str_format("e%lld-k%lld", static_cast<long long>(n),
                           static_cast<long long>(k));
      v.note = str_format("top-%lld of %lld experts, activated dff=%lld",
                          static_cast<long long>(k), static_cast<long long>(n),
                          static_cast<long long>(k * expert_dff));
      wl.variants.push_back(std::move(v));
    }
  }
}

void lower_prefill(WorkloadSpec& wl, const tfm::ConfigSection& s,
                   const std::string& origin) {
  const tfm::ConfigEntry& e = require_entry(s, "seq_lens", origin);
  for (const std::int64_t len : entry_int_list(e, origin)) {
    WorkloadVariant v;
    v.config = wl.base.with_seq_len(len);
    v.label = str_format("s%lld", static_cast<long long>(len));
    v.note = str_format("prefill %lld tokens",
                        static_cast<long long>(v.config.tokens()));
    wl.variants.push_back(std::move(v));
  }
}

void lower_specdec(WorkloadSpec& wl, const tfm::ConfigSection& s,
                   const std::string& origin) {
  const tfm::ConfigEntry& e = require_entry(s, "gammas", origin);
  for (const std::int64_t gamma : entry_int_list(e, origin)) {
    // One verify step scores gamma draft tokens plus the model's own next
    // token in a single forward pass: a (gamma+1)-token step whose GEMM m
    // dimension is b*(gamma+1) — the tile-quantization regime that decides
    // whether speculative decoding pays off on a given part.
    WorkloadVariant v;
    v.config = wl.base.with_seq_len(gamma + 1);
    v.label = str_format("g%lld", static_cast<long long>(gamma));
    v.note = str_format("verify step: %lld draft tokens + 1",
                        static_cast<long long>(gamma));
    wl.variants.push_back(std::move(v));
  }
}

void lower_vit(WorkloadSpec& wl, const tfm::ConfigSection& s,
               const std::string& origin) {
  const tfm::ConfigEntry& e = require_entry(s, "patches", origin);
  std::int64_t image = 224;
  if (const tfm::ConfigEntry* img = s.find("image")) {
    image = entry_int(*img, origin);
    if (image <= 0) {
      throw ConfigError(where(origin, img->line) +
                        "key 'image' must be positive");
    }
  }
  for (const std::int64_t patch : entry_int_list(e, origin)) {
    if (image % patch != 0) {
      throw ConfigError(
          where(origin, e.line) +
          str_format("patch %lld does not divide image edge %lld",
                     static_cast<long long>(patch),
                     static_cast<long long>(image)));
    }
    const std::int64_t side = image / patch;
    WorkloadVariant v;
    v.config = wl.base.with_seq_len(side * side);
    v.config.kind = tfm::ModelKind::kEncoder;
    v.label = str_format("p%lld", static_cast<long long>(patch));
    v.note = str_format("%lldx%lld image, %lldx%lld patches -> %lld tokens",
                        static_cast<long long>(image),
                        static_cast<long long>(image),
                        static_cast<long long>(patch),
                        static_cast<long long>(patch),
                        static_cast<long long>(side * side));
    wl.variants.push_back(std::move(v));
  }
}

struct FamilyInfo {
  const char* name;
  void (*lower)(WorkloadSpec&, const tfm::ConfigSection&, const std::string&);
  std::vector<std::string> keys;  ///< family-specific section keys
};

const std::vector<FamilyInfo>& families() {
  static const std::vector<FamilyInfo> f = {
      {"decoder", lower_decoder, {"heads", "hidden"}},
      {"gqa", lower_gqa, {"kv_ratios"}},
      {"moe", lower_moe, {"experts", "top_k", "expert_dff"}},
      {"prefill", lower_prefill, {"seq_lens"}},
      {"specdec", lower_specdec, {"gammas"}},
      {"vit", lower_vit, {"patches", "image"}},
  };
  return f;
}

}  // namespace

std::vector<std::string> known_families() {
  std::vector<std::string> out;
  for (const FamilyInfo& f : families()) out.push_back(f.name);
  return out;
}

WorkloadSpec workload_from_section(const tfm::ConfigSection& section,
                                   const std::string& origin) {
  const tfm::ConfigEntry& family = require_entry(section, "family", origin);
  const FamilyInfo* info = nullptr;
  for (const FamilyInfo& f : families()) {
    if (family.value == f.name) info = &f;
  }
  if (info == nullptr) {
    throw ConfigError(where(origin, family.line) + "unknown family '" +
                      family.value + "' (" + join(known_families(), "|") +
                      ")");
  }

  // Reject typos up front: only the common keys plus this family's own.
  const std::vector<std::string> common = {"family", "name",  "model",
                                           "custom", "seq",   "batch"};
  for (const tfm::ConfigEntry& e : section.entries) {
    bool known = false;
    for (const std::string& k : common) known = known || e.key == k;
    for (const std::string& k : info->keys) known = known || e.key == k;
    if (!known) {
      throw ConfigError(where(origin, e.line) + "unknown key '" + e.key +
                        "' for family '" + info->name + "'");
    }
  }

  WorkloadSpec wl;
  wl.family = info->name;

  const tfm::ConfigEntry* model = section.find("model");
  const tfm::ConfigEntry* custom = section.find("custom");
  if ((model != nullptr) == (custom != nullptr)) {
    throw ConfigError(where(origin, section.line) + "[" + section.name +
                      "] needs exactly one of 'model' (zoo name) or "
                      "'custom' (config string)");
  }
  try {
    wl.base = model != nullptr ? tfm::model_by_name(model->value)
                               : tfm::parse_config_string(custom->value);
  } catch (const Error& e) {
    const tfm::ConfigEntry& src = model != nullptr ? *model : *custom;
    throw ConfigError(where(origin, src.line) + e.what());
  }
  if (const tfm::ConfigEntry* e = section.find("seq")) {
    wl.base = wl.base.with_seq_len(entry_int(*e, origin));
  }
  if (const tfm::ConfigEntry* e = section.find("batch")) {
    wl.base = wl.base.with_microbatch(entry_int(*e, origin));
  }
  wl.name = section.find("name") != nullptr ? section.find("name")->value
                                            : wl.base.name;
  try {
    wl.base.validate();
  } catch (const Error& e) {
    throw ConfigError(where(origin, section.line) + "workload '" + wl.name +
                      "' base config: " + e.what());
  }

  info->lower(wl, section, origin);
  for (const WorkloadVariant& v : wl.variants) {
    validate_variant(wl, v, section, origin);
  }
  return wl;
}

}  // namespace codesign::sweep
