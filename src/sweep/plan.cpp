#include "sweep/plan.hpp"

#include <cstdint>
#include <set>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "gpuarch/gpu_spec.hpp"

namespace codesign::sweep {

namespace {

std::string where(const std::string& origin, int line) {
  return origin + ":" + std::to_string(line) + ": ";
}

/// FNV-1a 64 over the full matrix description. The fingerprint line in a
/// checkpoint stays one short token while still covering every lowered
/// variant config.
std::uint64_t fnv64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

SweepPlan parse_sweep_config(const std::string& text,
                             const std::string& origin) {
  SweepPlan plan;
  plan.name = "sweep";

  int sweep_section_line = 0;  // 0 = not seen yet
  for (const tfm::ConfigSection& s : tfm::parse_config_sections(text, origin)) {
    if (s.name == "sweep") {
      if (sweep_section_line != 0) {
        throw ConfigError(where(origin, s.line) +
                          "duplicate [sweep] section (first at line " +
                          std::to_string(sweep_section_line) + ")");
      }
      sweep_section_line = s.line;
      for (const tfm::ConfigEntry& e : s.entries) {
        if (e.key == "name") {
          plan.name = e.value;
        } else if (e.key == "gpus") {
          for (const std::string& part : split(e.value, ',')) {
            const std::string gpu{trim(part)};
            if (gpu.empty()) continue;
            try {
              plan.gpus.push_back(gpu::gpu_by_name(gpu).id);
            } catch (const Error& err) {
              throw ConfigError(where(origin, e.line) + err.what());
            }
            for (std::size_t i = 0; i + 1 < plan.gpus.size(); ++i) {
              if (plan.gpus[i] == plan.gpus.back()) {
                throw ConfigError(where(origin, e.line) + "duplicate GPU '" +
                                  gpu + "' (resolves to '" + plan.gpus.back() +
                                  "')");
              }
            }
          }
        } else {
          throw ConfigError(where(origin, e.line) + "unknown key '" + e.key +
                            "' in [sweep] (name|gpus)");
        }
      }
    } else if (s.name == "workload") {
      plan.workloads.push_back(workload_from_section(s, origin));
      for (std::size_t i = 0; i + 1 < plan.workloads.size(); ++i) {
        if (plan.workloads[i].name == plan.workloads.back().name) {
          throw ConfigError(where(origin, s.line) + "duplicate workload name '" +
                            plan.workloads.back().name +
                            "' (set a unique 'name =' per [workload])");
        }
      }
    } else {
      throw ConfigError(where(origin, s.line) + "unknown section [" + s.name +
                        "] (sweep|workload)");
    }
  }

  if (plan.gpus.empty()) {
    throw ConfigError(origin + ": no GPUs: add a [sweep] section with "
                      "'gpus = a100, h100, ...'");
  }
  if (plan.workloads.empty()) {
    throw ConfigError(origin + ": no [workload] sections");
  }
  return plan;
}

std::string sweep_fingerprint(const SweepPlan& plan, gemm::TilePolicy policy) {
  std::string desc = plan.name;
  for (const std::string& g : plan.gpus) desc += "|" + g;
  for (const WorkloadSpec& wl : plan.workloads) {
    desc += "|" + wl.name + ":" + wl.family + ":" + wl.base.to_string();
    for (const WorkloadVariant& v : wl.variants) {
      desc += ";" + v.label + "=" + v.config.to_string();
    }
  }
  return str_format("sweep name=%s policy=%d gpus=%s workloads=%zu sig=%016llx",
                    plan.name.c_str(), static_cast<int>(policy),
                    join(plan.gpus, ",").c_str(), plan.workloads.size(),
                    static_cast<unsigned long long>(fnv64(desc)));
}

}  // namespace codesign::sweep
