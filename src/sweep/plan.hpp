// plan.hpp — the parsed, validated scenario matrix.
//
// A SweepPlan is one sweep config file resolved end to end: the hardware
// axis (GPU registry ids, file order) crossed with the lowered workload
// specs (file order). The grid is planned deterministically — cell order,
// variant order, and the checkpoint fingerprint are pure functions of the
// config text and tile policy — which is what lets an interrupted sweep
// resume byte-identically (docs/SWEEP.md).
#pragma once

#include <string>
#include <vector>

#include "gemmsim/simulator.hpp"
#include "sweep/workload.hpp"

namespace codesign::sweep {

struct SweepPlan {
  std::string name;                ///< [sweep] name, defaults "sweep"
  std::vector<std::string> gpus;   ///< canonical registry ids, file order
  std::vector<WorkloadSpec> workloads;  ///< file order

  std::size_t cells() const { return gpus.size() * workloads.size(); }
};

/// Parse a sweep config (docs/SWEEP.md): one optional `[sweep]` section
/// (name=, gpus=) plus one `[workload]` section per workload. `origin` is
/// the path used in diagnostics. Throws ConfigError naming origin:line on
/// malformed text, unknown sections/keys/GPUs, or an empty matrix.
SweepPlan parse_sweep_config(const std::string& text,
                             const std::string& origin);

/// Identity of the matrix for checkpoint/resume: covers the plan name,
/// tile policy, GPU axis, and every lowered variant config. Any edit to
/// the config file changes the fingerprint, so a stale checkpoint is
/// rejected instead of silently resumed.
std::string sweep_fingerprint(const SweepPlan& plan, gemm::TilePolicy policy);

}  // namespace codesign::sweep
