#include "sweep/driver.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "gpuarch/gpu_spec.hpp"

namespace codesign::sweep {

namespace {

/// Cell-unique candidate name: the search checkpoint keys records by
/// config name, and the whole matrix shares one checkpoint file, so every
/// (workload, variant, gpu) triple must map to a distinct name.
std::string candidate_name(const WorkloadSpec& wl, const WorkloadVariant& v,
                           const std::string& gpu) {
  return wl.name + "/" + v.label + "@" + gpu;
}

}  // namespace

SweepResult run_sweep(const SweepPlan& plan, const SweepOptions& options) {
  // run_grid_search leaves fingerprint validation to its caller; the sweep
  // owns the matrix identity, so validate and seed here once for all cells.
  if (options.resume != nullptr) {
    const std::string fp = sweep_fingerprint(plan, options.policy);
    if (options.resume->fingerprint() != fp) {
      throw ConfigError(
          "cannot resume: checkpoint belongs to a different sweep (file: '" +
          options.resume->fingerprint() + "', this run: '" + fp + "')");
    }
    if (options.checkpoint != nullptr) {
      options.checkpoint->seed_from(*options.resume);
    }
  }

  SweepResult result;
  result.name = plan.name;
  result.policy = options.policy;
  result.gpus = plan.gpus;
  result.planned_cells = plan.cells();
  for (const WorkloadSpec& wl : plan.workloads) {
    result.workloads.push_back(
        {wl.name, wl.family, wl.base.to_string(), wl.variants.size()});
  }

  for (const WorkloadSpec& wl : plan.workloads) {
    for (const std::string& gpu : plan.gpus) {
      if (options.cancel != nullptr && options.cancel->cancelled()) {
        result.truncated = true;
        result.cancel_reason = options.cancel->reason();
        return result;
      }
      const std::string cell_key = wl.name + "@" + gpu;
      CODESIGN_FAILPOINT_T("sweep.cell", fail::token(cell_key));

      gemm::GemmSimulator sim(gpu::gpu_by_name(gpu), options.policy);
      if (options.cache != nullptr) sim.set_cache(options.cache);

      std::vector<tfm::TransformerConfig> configs;
      configs.reserve(wl.variants.size());
      std::map<std::string, const WorkloadVariant*> by_name;
      for (const WorkloadVariant& v : wl.variants) {
        tfm::TransformerConfig c = v.config;
        c.name = candidate_name(wl, v, gpu);
        by_name.emplace(c.name, &v);
        configs.push_back(std::move(c));
      }

      advisor::SearchOptions so;
      so.threads = options.threads;
      so.max_candidates = configs.size();
      so.faults = options.faults;
      so.cancel = options.cancel;
      so.checkpoint = options.checkpoint;
      so.resume = options.resume;
      const advisor::SearchOutcome outcome =
          advisor::run_grid_search(configs, wl.base, sim, so);

      result.evaluated += outcome.evaluated;
      result.resumed += outcome.resumed;
      result.retries += outcome.retries;
      result.skipped += outcome.skipped.size();
      if (outcome.truncated) {
        result.truncated = true;
        result.cancel_reason = outcome.cancel_reason;
        return result;  // drop the partial cell: completed cells only
      }

      SweepCell cell;
      cell.workload = wl.name;
      cell.family = wl.family;
      cell.gpu = gpu;
      for (const advisor::ShapeCandidate& cand : outcome.ranked) {
        const WorkloadVariant& v = *by_name.at(cand.config.name);
        SweepVariantResult vr;
        vr.label = v.label;
        vr.note = v.note;
        vr.config = cand.config;
        vr.layer_time = cand.layer_time;
        vr.layer_tflops = cand.layer_tflops;
        vr.time_per_token =
            cand.layer_time / static_cast<double>(cand.config.tokens());
        vr.param_count = cand.param_count;
        vr.rules_pass = cand.rules_pass;
        cell.variants.push_back(std::move(vr));
      }
      // Families vary seq_len within one cell, so the comparable score is
      // time per token, not raw layer time; (tpt, label) is a total order.
      std::stable_sort(cell.variants.begin(), cell.variants.end(),
                       [](const SweepVariantResult& a,
                          const SweepVariantResult& b) {
                         if (a.time_per_token != b.time_per_token) {
                           return a.time_per_token < b.time_per_token;
                         }
                         return a.label < b.label;
                       });
      for (const advisor::SkippedCandidate& s : outcome.skipped) {
        cell.skipped.push_back(
            {by_name.at(s.config.name)->label, s.reason, s.attempts});
      }
      if (!cell.variants.empty()) {
        cell.attribution =
            tfm::attribute_model(cell.variants.front().config, sim);
      }
      result.cells.push_back(std::move(cell));
    }
  }
  if (options.checkpoint != nullptr) options.checkpoint->flush();
  return result;
}

}  // namespace codesign::sweep
