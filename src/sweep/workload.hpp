// workload.hpp — declarative workload specs for the scenario matrix.
//
// A WorkloadSpec is one `[workload]` section of a sweep config file
// (docs/SWEEP.md), lowered onto the existing TransformerConfig layer/
// analyzer machinery. Each spec names a base model (zoo name or custom
// spec string) plus a *family* that expands it into a deterministic list
// of variants:
//
//   decoder  — the plain decoder LM, optionally gridded over `heads` and
//              `hidden` lists (cross product, file order);
//   gqa      — grouped-/multi-query attention: `kv_ratios` of query heads
//              per KV head (1 = MHA, a = MQA);
//   moe      — mixture-of-experts: `experts` x `top_k` grid lowered to the
//              dense-equivalent *activated* MLP width (top_k x expert_dff).
//              Expert count is carried in the note: routing and weight
//              capacity are outside the latency model's scope;
//   prefill  — long-context prefill: `seq_lens` variants;
//   specdec  — speculative decoding verify step: each `gammas` entry gamma
//              becomes a gamma+1-token step (draft tokens + 1), exposing
//              the small-m GEMM efficiency the verify pass lives or dies on;
//   vit      — vision transformer: `patches` sizes over an `image` edge,
//              lowered to an encoder with (image/patch)^2 tokens.
//
// Lowering is pure and validated: every variant config passes
// TransformerConfig::validate(), and every diagnostic names the offending
// file:line of the section that produced it.
#pragma once

#include <string>
#include <vector>

#include "transformer/config.hpp"
#include "transformer/config_parse.hpp"

namespace codesign::sweep {

/// One evaluated point of a workload: a lowered, validated config.
struct WorkloadVariant {
  std::string label;  ///< unique within the workload, e.g. "kv8", "s8192"
  tfm::TransformerConfig config;
  std::string note;  ///< human-readable lowering summary
};

struct WorkloadSpec {
  std::string name;    ///< unique within the sweep
  std::string family;  ///< decoder|gqa|moe|prefill|specdec|vit
  tfm::TransformerConfig base;           ///< the cell's search baseline
  std::vector<WorkloadVariant> variants;  ///< deterministic (file) order
};

/// Lower one `[workload]` config section. `origin` is the config path used
/// in diagnostics. Throws ConfigError (naming origin:line) on unknown
/// keys, missing family keys, or variants that fail config validation.
WorkloadSpec workload_from_section(const tfm::ConfigSection& section,
                                   const std::string& origin);

/// The family names workload_from_section accepts, sorted.
std::vector<std::string> known_families();

}  // namespace codesign::sweep
