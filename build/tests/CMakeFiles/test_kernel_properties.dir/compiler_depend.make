# Empty compiler generated dependencies file for test_kernel_properties.
# This may be replaced when dependencies are built.
