file(REMOVE_RECURSE
  "CMakeFiles/test_backward.dir/test_backward.cpp.o"
  "CMakeFiles/test_backward.dir/test_backward.cpp.o.d"
  "test_backward"
  "test_backward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
