file(REMOVE_RECURSE
  "CMakeFiles/test_tensor_core.dir/test_tensor_core.cpp.o"
  "CMakeFiles/test_tensor_core.dir/test_tensor_core.cpp.o.d"
  "test_tensor_core"
  "test_tensor_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
