# Empty dependencies file for test_tensor_core.
# This may be replaced when dependencies are built.
