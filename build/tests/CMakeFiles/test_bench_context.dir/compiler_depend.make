# Empty compiler generated dependencies file for test_bench_context.
# This may be replaced when dependencies are built.
