file(REMOVE_RECURSE
  "CMakeFiles/test_bench_context.dir/test_bench_context.cpp.o"
  "CMakeFiles/test_bench_context.dir/test_bench_context.cpp.o.d"
  "test_bench_context"
  "test_bench_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
