file(REMOVE_RECURSE
  "CMakeFiles/test_designer.dir/test_designer.cpp.o"
  "CMakeFiles/test_designer.dir/test_designer.cpp.o.d"
  "test_designer"
  "test_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
