# Empty dependencies file for test_layer_model.
# This may be replaced when dependencies are built.
