file(REMOVE_RECURSE
  "CMakeFiles/test_layer_model.dir/test_layer_model.cpp.o"
  "CMakeFiles/test_layer_model.dir/test_layer_model.cpp.o.d"
  "test_layer_model"
  "test_layer_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layer_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
