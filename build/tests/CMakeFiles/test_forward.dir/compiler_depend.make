# Empty compiler generated dependencies file for test_forward.
# This may be replaced when dependencies are built.
