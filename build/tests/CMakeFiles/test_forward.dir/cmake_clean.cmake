file(REMOVE_RECURSE
  "CMakeFiles/test_forward.dir/test_forward.cpp.o"
  "CMakeFiles/test_forward.dir/test_forward.cpp.o.d"
  "test_forward"
  "test_forward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
