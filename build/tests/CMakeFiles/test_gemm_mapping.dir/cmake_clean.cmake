file(REMOVE_RECURSE
  "CMakeFiles/test_gemm_mapping.dir/test_gemm_mapping.cpp.o"
  "CMakeFiles/test_gemm_mapping.dir/test_gemm_mapping.cpp.o.d"
  "test_gemm_mapping"
  "test_gemm_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gemm_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
