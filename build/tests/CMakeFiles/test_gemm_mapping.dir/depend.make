# Empty dependencies file for test_gemm_mapping.
# This may be replaced when dependencies are built.
