file(REMOVE_RECURSE
  "CMakeFiles/test_quantization.dir/test_quantization.cpp.o"
  "CMakeFiles/test_quantization.dir/test_quantization.cpp.o.d"
  "test_quantization"
  "test_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
