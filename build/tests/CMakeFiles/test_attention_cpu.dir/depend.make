# Empty dependencies file for test_attention_cpu.
# This may be replaced when dependencies are built.
