file(REMOVE_RECURSE
  "CMakeFiles/test_attention_cpu.dir/test_attention_cpu.cpp.o"
  "CMakeFiles/test_attention_cpu.dir/test_attention_cpu.cpp.o.d"
  "test_attention_cpu"
  "test_attention_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attention_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
