# Empty dependencies file for test_flash_attention.
# This may be replaced when dependencies are built.
