# Empty compiler generated dependencies file for test_zoo_wide.
# This may be replaced when dependencies are built.
