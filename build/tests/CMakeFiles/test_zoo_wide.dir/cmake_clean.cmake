file(REMOVE_RECURSE
  "CMakeFiles/test_zoo_wide.dir/test_zoo_wide.cpp.o"
  "CMakeFiles/test_zoo_wide.dir/test_zoo_wide.cpp.o.d"
  "test_zoo_wide"
  "test_zoo_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zoo_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
