file(REMOVE_RECURSE
  "CMakeFiles/test_gemm_cpu.dir/test_gemm_cpu.cpp.o"
  "CMakeFiles/test_gemm_cpu.dir/test_gemm_cpu.cpp.o.d"
  "test_gemm_cpu"
  "test_gemm_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gemm_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
