# Empty compiler generated dependencies file for test_config_parse.
# This may be replaced when dependencies are built.
