# Empty dependencies file for test_gqa.
# This may be replaced when dependencies are built.
