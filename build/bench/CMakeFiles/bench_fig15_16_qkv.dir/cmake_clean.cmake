file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_16_qkv.dir/bench_fig15_16_qkv.cpp.o"
  "CMakeFiles/bench_fig15_16_qkv.dir/bench_fig15_16_qkv.cpp.o.d"
  "bench_fig15_16_qkv"
  "bench_fig15_16_qkv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_16_qkv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
