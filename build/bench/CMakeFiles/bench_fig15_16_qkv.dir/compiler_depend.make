# Empty compiler generated dependencies file for bench_fig15_16_qkv.
# This may be replaced when dependencies are built.
