file(REMOVE_RECURSE
  "libcodesign_bench_common.a"
)
