file(REMOVE_RECURSE
  "CMakeFiles/codesign_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/codesign_bench_common.dir/bench_common.cpp.o.d"
  "libcodesign_bench_common.a"
  "libcodesign_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
