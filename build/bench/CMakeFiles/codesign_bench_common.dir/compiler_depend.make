# Empty compiler generated dependencies file for codesign_bench_common.
# This may be replaced when dependencies are built.
