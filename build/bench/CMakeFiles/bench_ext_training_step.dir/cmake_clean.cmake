file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_training_step.dir/bench_ext_training_step.cpp.o"
  "CMakeFiles/bench_ext_training_step.dir/bench_ext_training_step.cpp.o.d"
  "bench_ext_training_step"
  "bench_ext_training_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_training_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
