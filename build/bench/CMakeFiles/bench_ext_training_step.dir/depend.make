# Empty dependencies file for bench_ext_training_step.
# This may be replaced when dependencies are built.
