file(REMOVE_RECURSE
  "CMakeFiles/bench_case_hw_ratio.dir/bench_case_hw_ratio.cpp.o"
  "CMakeFiles/bench_case_hw_ratio.dir/bench_case_hw_ratio.cpp.o.d"
  "bench_case_hw_ratio"
  "bench_case_hw_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_hw_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
