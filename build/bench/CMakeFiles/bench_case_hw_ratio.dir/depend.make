# Empty dependencies file for bench_case_hw_ratio.
# This may be replaced when dependencies are built.
