# Empty dependencies file for bench_case_6gpu_nodes.
# This may be replaced when dependencies are built.
