file(REMOVE_RECURSE
  "CMakeFiles/bench_case_6gpu_nodes.dir/bench_case_6gpu_nodes.cpp.o"
  "CMakeFiles/bench_case_6gpu_nodes.dir/bench_case_6gpu_nodes.cpp.o.d"
  "bench_case_6gpu_nodes"
  "bench_case_6gpu_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_6gpu_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
