# Empty compiler generated dependencies file for bench_ext_volta_vs_ampere.
# This may be replaced when dependencies are built.
