file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_volta_vs_ampere.dir/bench_ext_volta_vs_ampere.cpp.o"
  "CMakeFiles/bench_ext_volta_vs_ampere.dir/bench_ext_volta_vs_ampere.cpp.o.d"
  "bench_ext_volta_vs_ampere"
  "bench_ext_volta_vs_ampere.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_volta_vs_ampere.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
