# Empty dependencies file for bench_case_swiglu.
# This may be replaced when dependencies are built.
