file(REMOVE_RECURSE
  "CMakeFiles/bench_case_swiglu.dir/bench_case_swiglu.cpp.o"
  "CMakeFiles/bench_case_swiglu.dir/bench_case_swiglu.cpp.o.d"
  "bench_case_swiglu"
  "bench_case_swiglu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_swiglu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
