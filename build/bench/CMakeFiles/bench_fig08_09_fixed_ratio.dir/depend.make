# Empty dependencies file for bench_fig08_09_fixed_ratio.
# This may be replaced when dependencies are built.
