file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_gemm_proportions.dir/bench_fig11_gemm_proportions.cpp.o"
  "CMakeFiles/bench_fig11_gemm_proportions.dir/bench_fig11_gemm_proportions.cpp.o.d"
  "bench_fig11_gemm_proportions"
  "bench_fig11_gemm_proportions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_gemm_proportions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
