# Empty compiler generated dependencies file for bench_fig11_gemm_proportions.
# This may be replaced when dependencies are built.
