file(REMOVE_RECURSE
  "CMakeFiles/bench_kernels_cpu.dir/bench_kernels_cpu.cpp.o"
  "CMakeFiles/bench_kernels_cpu.dir/bench_kernels_cpu.cpp.o.d"
  "bench_kernels_cpu"
  "bench_kernels_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernels_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
