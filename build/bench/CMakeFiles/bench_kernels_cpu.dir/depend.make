# Empty dependencies file for bench_kernels_cpu.
# This may be replaced when dependencies are built.
