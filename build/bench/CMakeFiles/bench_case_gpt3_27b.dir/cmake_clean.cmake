file(REMOVE_RECURSE
  "CMakeFiles/bench_case_gpt3_27b.dir/bench_case_gpt3_27b.cpp.o"
  "CMakeFiles/bench_case_gpt3_27b.dir/bench_case_gpt3_27b.cpp.o.d"
  "bench_case_gpt3_27b"
  "bench_case_gpt3_27b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_gpt3_27b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
