# Empty compiler generated dependencies file for bench_case_gpt3_27b.
# This may be replaced when dependencies are built.
