# Empty dependencies file for bench_fig17_18_attention_appendix.
# This may be replaced when dependencies are built.
