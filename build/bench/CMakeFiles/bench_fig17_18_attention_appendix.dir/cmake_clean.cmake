file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_18_attention_appendix.dir/bench_fig17_18_attention_appendix.cpp.o"
  "CMakeFiles/bench_fig17_18_attention_appendix.dir/bench_fig17_18_attention_appendix.cpp.o.d"
  "bench_fig17_18_attention_appendix"
  "bench_fig17_18_attention_appendix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_18_attention_appendix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
