file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_seqlen.dir/bench_ext_seqlen.cpp.o"
  "CMakeFiles/bench_ext_seqlen.dir/bench_ext_seqlen.cpp.o.d"
  "bench_ext_seqlen"
  "bench_ext_seqlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_seqlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
