# Empty dependencies file for bench_ext_seqlen.
# This may be replaced when dependencies are built.
