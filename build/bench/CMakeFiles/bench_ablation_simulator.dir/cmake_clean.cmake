file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_simulator.dir/bench_ablation_simulator.cpp.o"
  "CMakeFiles/bench_ablation_simulator.dir/bench_ablation_simulator.cpp.o.d"
  "bench_ablation_simulator"
  "bench_ablation_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
