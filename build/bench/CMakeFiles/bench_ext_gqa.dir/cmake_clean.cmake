file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_gqa.dir/bench_ext_gqa.cpp.o"
  "CMakeFiles/bench_ext_gqa.dir/bench_ext_gqa.cpp.o.d"
  "bench_ext_gqa"
  "bench_ext_gqa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gqa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
