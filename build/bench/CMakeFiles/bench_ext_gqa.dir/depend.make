# Empty dependencies file for bench_ext_gqa.
# This may be replaced when dependencies are built.
