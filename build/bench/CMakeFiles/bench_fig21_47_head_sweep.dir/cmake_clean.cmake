file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_47_head_sweep.dir/bench_fig21_47_head_sweep.cpp.o"
  "CMakeFiles/bench_fig21_47_head_sweep.dir/bench_fig21_47_head_sweep.cpp.o.d"
  "bench_fig21_47_head_sweep"
  "bench_fig21_47_head_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_47_head_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
