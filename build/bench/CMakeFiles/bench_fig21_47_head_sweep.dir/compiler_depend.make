# Empty compiler generated dependencies file for bench_fig21_47_head_sweep.
# This may be replaced when dependencies are built.
