
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig21_47_head_sweep.cpp" "bench/CMakeFiles/bench_fig21_47_head_sweep.dir/bench_fig21_47_head_sweep.cpp.o" "gcc" "bench/CMakeFiles/bench_fig21_47_head_sweep.dir/bench_fig21_47_head_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/codesign_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/codesign_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/advisor/CMakeFiles/codesign_advisor.dir/DependInfo.cmake"
  "/root/repo/build/src/transformer/CMakeFiles/codesign_transformer.dir/DependInfo.cmake"
  "/root/repo/build/src/gemmsim/CMakeFiles/codesign_gemmsim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/codesign_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gpuarch/CMakeFiles/codesign_gpuarch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/codesign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
