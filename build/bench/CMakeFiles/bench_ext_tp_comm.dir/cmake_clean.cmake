file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_tp_comm.dir/bench_ext_tp_comm.cpp.o"
  "CMakeFiles/bench_ext_tp_comm.dir/bench_ext_tp_comm.cpp.o.d"
  "bench_ext_tp_comm"
  "bench_ext_tp_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tp_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
