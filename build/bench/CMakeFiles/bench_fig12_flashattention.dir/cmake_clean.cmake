file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_flashattention.dir/bench_fig12_flashattention.cpp.o"
  "CMakeFiles/bench_fig12_flashattention.dir/bench_fig12_flashattention.cpp.o.d"
  "bench_fig12_flashattention"
  "bench_fig12_flashattention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_flashattention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
