# Empty dependencies file for bench_fig12_flashattention.
# This may be replaced when dependencies are built.
