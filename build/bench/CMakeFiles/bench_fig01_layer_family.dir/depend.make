# Empty dependencies file for bench_fig01_layer_family.
# This may be replaced when dependencies are built.
