file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_layer_family.dir/bench_fig01_layer_family.cpp.o"
  "CMakeFiles/bench_fig01_layer_family.dir/bench_fig01_layer_family.cpp.o.d"
  "bench_fig01_layer_family"
  "bench_fig01_layer_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_layer_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
