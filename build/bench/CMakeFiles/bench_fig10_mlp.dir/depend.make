# Empty dependencies file for bench_fig10_mlp.
# This may be replaced when dependencies are built.
