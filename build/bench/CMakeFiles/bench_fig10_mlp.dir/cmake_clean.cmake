file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mlp.dir/bench_fig10_mlp.cpp.o"
  "CMakeFiles/bench_fig10_mlp.dir/bench_fig10_mlp.cpp.o.d"
  "bench_fig10_mlp"
  "bench_fig10_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
