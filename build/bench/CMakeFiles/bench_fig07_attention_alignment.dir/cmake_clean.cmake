file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_attention_alignment.dir/bench_fig07_attention_alignment.cpp.o"
  "CMakeFiles/bench_fig07_attention_alignment.dir/bench_fig07_attention_alignment.cpp.o.d"
  "bench_fig07_attention_alignment"
  "bench_fig07_attention_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_attention_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
