# Empty compiler generated dependencies file for bench_fig07_attention_alignment.
# This may be replaced when dependencies are built.
