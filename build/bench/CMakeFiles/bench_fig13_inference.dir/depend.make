# Empty dependencies file for bench_fig13_inference.
# This may be replaced when dependencies are built.
