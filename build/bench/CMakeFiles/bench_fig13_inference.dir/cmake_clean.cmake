file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_inference.dir/bench_fig13_inference.cpp.o"
  "CMakeFiles/bench_fig13_inference.dir/bench_fig13_inference.cpp.o.d"
  "bench_fig13_inference"
  "bench_fig13_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
