# Empty dependencies file for bench_fig14_dim_order.
# This may be replaced when dependencies are built.
