file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_dim_order.dir/bench_fig14_dim_order.cpp.o"
  "CMakeFiles/bench_fig14_dim_order.dir/bench_fig14_dim_order.cpp.o.d"
  "bench_fig14_dim_order"
  "bench_fig14_dim_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_dim_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
