# Empty dependencies file for bench_case_bert.
# This may be replaced when dependencies are built.
