file(REMOVE_RECURSE
  "CMakeFiles/bench_case_bert.dir/bench_case_bert.cpp.o"
  "CMakeFiles/bench_case_bert.dir/bench_case_bert.cpp.o.d"
  "bench_case_bert"
  "bench_case_bert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_bert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
