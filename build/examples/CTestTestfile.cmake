# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_quickstart "/root/repo/build/examples/quickstart" "--model=gpt3-125m")
set_tests_properties(smoke_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_shape_explorer "/root/repo/build/examples/shape_explorer" "--h=2048" "--a=16" "--layers=24")
set_tests_properties(smoke_shape_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_swiglu_sizing "/root/repo/build/examples/swiglu_sizing" "--h=2048" "--radius=128")
set_tests_properties(smoke_swiglu_sizing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_inference_planner "/root/repo/build/examples/inference_planner" "--models=pythia-160m,pythia-410m")
set_tests_properties(smoke_inference_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_cluster_planner "/root/repo/build/examples/cluster_planner" "--model=gpt3-1.3b" "--cluster=aws-p4d")
set_tests_properties(smoke_cluster_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_paper_tour "/root/repo/build/examples/paper_tour")
set_tests_properties(smoke_paper_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_run_tiny_model "/root/repo/build/examples/run_tiny_model" "--h=32" "--a=4" "--layers=1" "--s=16" "--v=64")
set_tests_properties(smoke_run_tiny_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
