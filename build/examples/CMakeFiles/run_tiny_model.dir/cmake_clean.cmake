file(REMOVE_RECURSE
  "CMakeFiles/run_tiny_model.dir/run_tiny_model.cpp.o"
  "CMakeFiles/run_tiny_model.dir/run_tiny_model.cpp.o.d"
  "run_tiny_model"
  "run_tiny_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_tiny_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
