# Empty dependencies file for run_tiny_model.
# This may be replaced when dependencies are built.
