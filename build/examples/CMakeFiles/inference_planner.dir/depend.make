# Empty dependencies file for inference_planner.
# This may be replaced when dependencies are built.
