file(REMOVE_RECURSE
  "CMakeFiles/inference_planner.dir/inference_planner.cpp.o"
  "CMakeFiles/inference_planner.dir/inference_planner.cpp.o.d"
  "inference_planner"
  "inference_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
