# Empty compiler generated dependencies file for shape_explorer.
# This may be replaced when dependencies are built.
