# Empty dependencies file for swiglu_sizing.
# This may be replaced when dependencies are built.
