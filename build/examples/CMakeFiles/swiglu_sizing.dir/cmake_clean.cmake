file(REMOVE_RECURSE
  "CMakeFiles/swiglu_sizing.dir/swiglu_sizing.cpp.o"
  "CMakeFiles/swiglu_sizing.dir/swiglu_sizing.cpp.o.d"
  "swiglu_sizing"
  "swiglu_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiglu_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
