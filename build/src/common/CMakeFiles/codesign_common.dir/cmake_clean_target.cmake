file(REMOVE_RECURSE
  "libcodesign_common.a"
)
