# Empty compiler generated dependencies file for codesign_common.
# This may be replaced when dependencies are built.
