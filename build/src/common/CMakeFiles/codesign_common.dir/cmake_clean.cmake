file(REMOVE_RECURSE
  "CMakeFiles/codesign_common.dir/cli.cpp.o"
  "CMakeFiles/codesign_common.dir/cli.cpp.o.d"
  "CMakeFiles/codesign_common.dir/error.cpp.o"
  "CMakeFiles/codesign_common.dir/error.cpp.o.d"
  "CMakeFiles/codesign_common.dir/logging.cpp.o"
  "CMakeFiles/codesign_common.dir/logging.cpp.o.d"
  "CMakeFiles/codesign_common.dir/rng.cpp.o"
  "CMakeFiles/codesign_common.dir/rng.cpp.o.d"
  "CMakeFiles/codesign_common.dir/stats.cpp.o"
  "CMakeFiles/codesign_common.dir/stats.cpp.o.d"
  "CMakeFiles/codesign_common.dir/strings.cpp.o"
  "CMakeFiles/codesign_common.dir/strings.cpp.o.d"
  "CMakeFiles/codesign_common.dir/table.cpp.o"
  "CMakeFiles/codesign_common.dir/table.cpp.o.d"
  "libcodesign_common.a"
  "libcodesign_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
