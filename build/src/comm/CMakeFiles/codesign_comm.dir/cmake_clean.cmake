file(REMOVE_RECURSE
  "CMakeFiles/codesign_comm.dir/cluster_spec.cpp.o"
  "CMakeFiles/codesign_comm.dir/cluster_spec.cpp.o.d"
  "CMakeFiles/codesign_comm.dir/collectives.cpp.o"
  "CMakeFiles/codesign_comm.dir/collectives.cpp.o.d"
  "CMakeFiles/codesign_comm.dir/parallelism.cpp.o"
  "CMakeFiles/codesign_comm.dir/parallelism.cpp.o.d"
  "libcodesign_comm.a"
  "libcodesign_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
