file(REMOVE_RECURSE
  "libcodesign_comm.a"
)
