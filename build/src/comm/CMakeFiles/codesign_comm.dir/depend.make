# Empty dependencies file for codesign_comm.
# This may be replaced when dependencies are built.
