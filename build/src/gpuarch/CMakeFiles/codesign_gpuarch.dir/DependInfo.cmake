
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpuarch/dtype.cpp" "src/gpuarch/CMakeFiles/codesign_gpuarch.dir/dtype.cpp.o" "gcc" "src/gpuarch/CMakeFiles/codesign_gpuarch.dir/dtype.cpp.o.d"
  "/root/repo/src/gpuarch/gpu_spec.cpp" "src/gpuarch/CMakeFiles/codesign_gpuarch.dir/gpu_spec.cpp.o" "gcc" "src/gpuarch/CMakeFiles/codesign_gpuarch.dir/gpu_spec.cpp.o.d"
  "/root/repo/src/gpuarch/occupancy.cpp" "src/gpuarch/CMakeFiles/codesign_gpuarch.dir/occupancy.cpp.o" "gcc" "src/gpuarch/CMakeFiles/codesign_gpuarch.dir/occupancy.cpp.o.d"
  "/root/repo/src/gpuarch/tensor_core.cpp" "src/gpuarch/CMakeFiles/codesign_gpuarch.dir/tensor_core.cpp.o" "gcc" "src/gpuarch/CMakeFiles/codesign_gpuarch.dir/tensor_core.cpp.o.d"
  "/root/repo/src/gpuarch/tile_config.cpp" "src/gpuarch/CMakeFiles/codesign_gpuarch.dir/tile_config.cpp.o" "gcc" "src/gpuarch/CMakeFiles/codesign_gpuarch.dir/tile_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/codesign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
