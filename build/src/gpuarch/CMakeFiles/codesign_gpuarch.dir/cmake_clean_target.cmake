file(REMOVE_RECURSE
  "libcodesign_gpuarch.a"
)
