file(REMOVE_RECURSE
  "CMakeFiles/codesign_gpuarch.dir/dtype.cpp.o"
  "CMakeFiles/codesign_gpuarch.dir/dtype.cpp.o.d"
  "CMakeFiles/codesign_gpuarch.dir/gpu_spec.cpp.o"
  "CMakeFiles/codesign_gpuarch.dir/gpu_spec.cpp.o.d"
  "CMakeFiles/codesign_gpuarch.dir/occupancy.cpp.o"
  "CMakeFiles/codesign_gpuarch.dir/occupancy.cpp.o.d"
  "CMakeFiles/codesign_gpuarch.dir/tensor_core.cpp.o"
  "CMakeFiles/codesign_gpuarch.dir/tensor_core.cpp.o.d"
  "CMakeFiles/codesign_gpuarch.dir/tile_config.cpp.o"
  "CMakeFiles/codesign_gpuarch.dir/tile_config.cpp.o.d"
  "libcodesign_gpuarch.a"
  "libcodesign_gpuarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_gpuarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
