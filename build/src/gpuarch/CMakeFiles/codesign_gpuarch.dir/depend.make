# Empty dependencies file for codesign_gpuarch.
# This may be replaced when dependencies are built.
