file(REMOVE_RECURSE
  "CMakeFiles/codesign_transformer.dir/config.cpp.o"
  "CMakeFiles/codesign_transformer.dir/config.cpp.o.d"
  "CMakeFiles/codesign_transformer.dir/config_parse.cpp.o"
  "CMakeFiles/codesign_transformer.dir/config_parse.cpp.o.d"
  "CMakeFiles/codesign_transformer.dir/flops.cpp.o"
  "CMakeFiles/codesign_transformer.dir/flops.cpp.o.d"
  "CMakeFiles/codesign_transformer.dir/forward.cpp.o"
  "CMakeFiles/codesign_transformer.dir/forward.cpp.o.d"
  "CMakeFiles/codesign_transformer.dir/gemm_mapping.cpp.o"
  "CMakeFiles/codesign_transformer.dir/gemm_mapping.cpp.o.d"
  "CMakeFiles/codesign_transformer.dir/inference.cpp.o"
  "CMakeFiles/codesign_transformer.dir/inference.cpp.o.d"
  "CMakeFiles/codesign_transformer.dir/layer_model.cpp.o"
  "CMakeFiles/codesign_transformer.dir/layer_model.cpp.o.d"
  "CMakeFiles/codesign_transformer.dir/model_zoo.cpp.o"
  "CMakeFiles/codesign_transformer.dir/model_zoo.cpp.o.d"
  "CMakeFiles/codesign_transformer.dir/params.cpp.o"
  "CMakeFiles/codesign_transformer.dir/params.cpp.o.d"
  "CMakeFiles/codesign_transformer.dir/pipeline.cpp.o"
  "CMakeFiles/codesign_transformer.dir/pipeline.cpp.o.d"
  "CMakeFiles/codesign_transformer.dir/trace.cpp.o"
  "CMakeFiles/codesign_transformer.dir/trace.cpp.o.d"
  "CMakeFiles/codesign_transformer.dir/training.cpp.o"
  "CMakeFiles/codesign_transformer.dir/training.cpp.o.d"
  "libcodesign_transformer.a"
  "libcodesign_transformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
