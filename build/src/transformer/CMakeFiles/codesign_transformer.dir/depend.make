# Empty dependencies file for codesign_transformer.
# This may be replaced when dependencies are built.
