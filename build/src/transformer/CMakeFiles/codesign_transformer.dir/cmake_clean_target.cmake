file(REMOVE_RECURSE
  "libcodesign_transformer.a"
)
