
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transformer/config.cpp" "src/transformer/CMakeFiles/codesign_transformer.dir/config.cpp.o" "gcc" "src/transformer/CMakeFiles/codesign_transformer.dir/config.cpp.o.d"
  "/root/repo/src/transformer/config_parse.cpp" "src/transformer/CMakeFiles/codesign_transformer.dir/config_parse.cpp.o" "gcc" "src/transformer/CMakeFiles/codesign_transformer.dir/config_parse.cpp.o.d"
  "/root/repo/src/transformer/flops.cpp" "src/transformer/CMakeFiles/codesign_transformer.dir/flops.cpp.o" "gcc" "src/transformer/CMakeFiles/codesign_transformer.dir/flops.cpp.o.d"
  "/root/repo/src/transformer/forward.cpp" "src/transformer/CMakeFiles/codesign_transformer.dir/forward.cpp.o" "gcc" "src/transformer/CMakeFiles/codesign_transformer.dir/forward.cpp.o.d"
  "/root/repo/src/transformer/gemm_mapping.cpp" "src/transformer/CMakeFiles/codesign_transformer.dir/gemm_mapping.cpp.o" "gcc" "src/transformer/CMakeFiles/codesign_transformer.dir/gemm_mapping.cpp.o.d"
  "/root/repo/src/transformer/inference.cpp" "src/transformer/CMakeFiles/codesign_transformer.dir/inference.cpp.o" "gcc" "src/transformer/CMakeFiles/codesign_transformer.dir/inference.cpp.o.d"
  "/root/repo/src/transformer/layer_model.cpp" "src/transformer/CMakeFiles/codesign_transformer.dir/layer_model.cpp.o" "gcc" "src/transformer/CMakeFiles/codesign_transformer.dir/layer_model.cpp.o.d"
  "/root/repo/src/transformer/model_zoo.cpp" "src/transformer/CMakeFiles/codesign_transformer.dir/model_zoo.cpp.o" "gcc" "src/transformer/CMakeFiles/codesign_transformer.dir/model_zoo.cpp.o.d"
  "/root/repo/src/transformer/params.cpp" "src/transformer/CMakeFiles/codesign_transformer.dir/params.cpp.o" "gcc" "src/transformer/CMakeFiles/codesign_transformer.dir/params.cpp.o.d"
  "/root/repo/src/transformer/pipeline.cpp" "src/transformer/CMakeFiles/codesign_transformer.dir/pipeline.cpp.o" "gcc" "src/transformer/CMakeFiles/codesign_transformer.dir/pipeline.cpp.o.d"
  "/root/repo/src/transformer/trace.cpp" "src/transformer/CMakeFiles/codesign_transformer.dir/trace.cpp.o" "gcc" "src/transformer/CMakeFiles/codesign_transformer.dir/trace.cpp.o.d"
  "/root/repo/src/transformer/training.cpp" "src/transformer/CMakeFiles/codesign_transformer.dir/training.cpp.o" "gcc" "src/transformer/CMakeFiles/codesign_transformer.dir/training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gemmsim/CMakeFiles/codesign_gemmsim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/codesign_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gpuarch/CMakeFiles/codesign_gpuarch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/codesign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
