# Empty compiler generated dependencies file for codesign_advisor.
# This may be replaced when dependencies are built.
