file(REMOVE_RECURSE
  "CMakeFiles/codesign_advisor.dir/cluster.cpp.o"
  "CMakeFiles/codesign_advisor.dir/cluster.cpp.o.d"
  "CMakeFiles/codesign_advisor.dir/compare.cpp.o"
  "CMakeFiles/codesign_advisor.dir/compare.cpp.o.d"
  "CMakeFiles/codesign_advisor.dir/designer.cpp.o"
  "CMakeFiles/codesign_advisor.dir/designer.cpp.o.d"
  "CMakeFiles/codesign_advisor.dir/report.cpp.o"
  "CMakeFiles/codesign_advisor.dir/report.cpp.o.d"
  "CMakeFiles/codesign_advisor.dir/rules.cpp.o"
  "CMakeFiles/codesign_advisor.dir/rules.cpp.o.d"
  "CMakeFiles/codesign_advisor.dir/search.cpp.o"
  "CMakeFiles/codesign_advisor.dir/search.cpp.o.d"
  "libcodesign_advisor.a"
  "libcodesign_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
