
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advisor/cluster.cpp" "src/advisor/CMakeFiles/codesign_advisor.dir/cluster.cpp.o" "gcc" "src/advisor/CMakeFiles/codesign_advisor.dir/cluster.cpp.o.d"
  "/root/repo/src/advisor/compare.cpp" "src/advisor/CMakeFiles/codesign_advisor.dir/compare.cpp.o" "gcc" "src/advisor/CMakeFiles/codesign_advisor.dir/compare.cpp.o.d"
  "/root/repo/src/advisor/designer.cpp" "src/advisor/CMakeFiles/codesign_advisor.dir/designer.cpp.o" "gcc" "src/advisor/CMakeFiles/codesign_advisor.dir/designer.cpp.o.d"
  "/root/repo/src/advisor/report.cpp" "src/advisor/CMakeFiles/codesign_advisor.dir/report.cpp.o" "gcc" "src/advisor/CMakeFiles/codesign_advisor.dir/report.cpp.o.d"
  "/root/repo/src/advisor/rules.cpp" "src/advisor/CMakeFiles/codesign_advisor.dir/rules.cpp.o" "gcc" "src/advisor/CMakeFiles/codesign_advisor.dir/rules.cpp.o.d"
  "/root/repo/src/advisor/search.cpp" "src/advisor/CMakeFiles/codesign_advisor.dir/search.cpp.o" "gcc" "src/advisor/CMakeFiles/codesign_advisor.dir/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transformer/CMakeFiles/codesign_transformer.dir/DependInfo.cmake"
  "/root/repo/build/src/gemmsim/CMakeFiles/codesign_gemmsim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/codesign_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gpuarch/CMakeFiles/codesign_gpuarch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/codesign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
