file(REMOVE_RECURSE
  "libcodesign_advisor.a"
)
