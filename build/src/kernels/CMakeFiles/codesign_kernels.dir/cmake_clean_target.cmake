file(REMOVE_RECURSE
  "libcodesign_kernels.a"
)
