# Empty dependencies file for codesign_kernels.
# This may be replaced when dependencies are built.
