file(REMOVE_RECURSE
  "CMakeFiles/codesign_kernels.dir/attention_cpu.cpp.o"
  "CMakeFiles/codesign_kernels.dir/attention_cpu.cpp.o.d"
  "CMakeFiles/codesign_kernels.dir/backward.cpp.o"
  "CMakeFiles/codesign_kernels.dir/backward.cpp.o.d"
  "CMakeFiles/codesign_kernels.dir/gemm_cpu.cpp.o"
  "CMakeFiles/codesign_kernels.dir/gemm_cpu.cpp.o.d"
  "CMakeFiles/codesign_kernels.dir/half.cpp.o"
  "CMakeFiles/codesign_kernels.dir/half.cpp.o.d"
  "CMakeFiles/codesign_kernels.dir/ops.cpp.o"
  "CMakeFiles/codesign_kernels.dir/ops.cpp.o.d"
  "CMakeFiles/codesign_kernels.dir/tensor.cpp.o"
  "CMakeFiles/codesign_kernels.dir/tensor.cpp.o.d"
  "libcodesign_kernels.a"
  "libcodesign_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
