
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/attention_cpu.cpp" "src/kernels/CMakeFiles/codesign_kernels.dir/attention_cpu.cpp.o" "gcc" "src/kernels/CMakeFiles/codesign_kernels.dir/attention_cpu.cpp.o.d"
  "/root/repo/src/kernels/backward.cpp" "src/kernels/CMakeFiles/codesign_kernels.dir/backward.cpp.o" "gcc" "src/kernels/CMakeFiles/codesign_kernels.dir/backward.cpp.o.d"
  "/root/repo/src/kernels/gemm_cpu.cpp" "src/kernels/CMakeFiles/codesign_kernels.dir/gemm_cpu.cpp.o" "gcc" "src/kernels/CMakeFiles/codesign_kernels.dir/gemm_cpu.cpp.o.d"
  "/root/repo/src/kernels/half.cpp" "src/kernels/CMakeFiles/codesign_kernels.dir/half.cpp.o" "gcc" "src/kernels/CMakeFiles/codesign_kernels.dir/half.cpp.o.d"
  "/root/repo/src/kernels/ops.cpp" "src/kernels/CMakeFiles/codesign_kernels.dir/ops.cpp.o" "gcc" "src/kernels/CMakeFiles/codesign_kernels.dir/ops.cpp.o.d"
  "/root/repo/src/kernels/tensor.cpp" "src/kernels/CMakeFiles/codesign_kernels.dir/tensor.cpp.o" "gcc" "src/kernels/CMakeFiles/codesign_kernels.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/codesign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
