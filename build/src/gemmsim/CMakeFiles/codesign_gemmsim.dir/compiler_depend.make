# Empty compiler generated dependencies file for codesign_gemmsim.
# This may be replaced when dependencies are built.
