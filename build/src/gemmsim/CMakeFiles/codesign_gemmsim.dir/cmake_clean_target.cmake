file(REMOVE_RECURSE
  "libcodesign_gemmsim.a"
)
