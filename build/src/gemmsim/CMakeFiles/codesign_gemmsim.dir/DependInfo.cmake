
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gemmsim/explain.cpp" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/explain.cpp.o" "gcc" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/explain.cpp.o.d"
  "/root/repo/src/gemmsim/flash_attention.cpp" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/flash_attention.cpp.o" "gcc" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/flash_attention.cpp.o.d"
  "/root/repo/src/gemmsim/gemm_problem.cpp" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/gemm_problem.cpp.o" "gcc" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/gemm_problem.cpp.o.d"
  "/root/repo/src/gemmsim/kernel_model.cpp" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/kernel_model.cpp.o" "gcc" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/kernel_model.cpp.o.d"
  "/root/repo/src/gemmsim/quantization.cpp" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/quantization.cpp.o" "gcc" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/quantization.cpp.o.d"
  "/root/repo/src/gemmsim/roofline.cpp" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/roofline.cpp.o" "gcc" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/roofline.cpp.o.d"
  "/root/repo/src/gemmsim/simulator.cpp" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/simulator.cpp.o" "gcc" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/simulator.cpp.o.d"
  "/root/repo/src/gemmsim/sm_scheduler.cpp" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/sm_scheduler.cpp.o" "gcc" "src/gemmsim/CMakeFiles/codesign_gemmsim.dir/sm_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpuarch/CMakeFiles/codesign_gpuarch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/codesign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
