file(REMOVE_RECURSE
  "CMakeFiles/codesign_gemmsim.dir/explain.cpp.o"
  "CMakeFiles/codesign_gemmsim.dir/explain.cpp.o.d"
  "CMakeFiles/codesign_gemmsim.dir/flash_attention.cpp.o"
  "CMakeFiles/codesign_gemmsim.dir/flash_attention.cpp.o.d"
  "CMakeFiles/codesign_gemmsim.dir/gemm_problem.cpp.o"
  "CMakeFiles/codesign_gemmsim.dir/gemm_problem.cpp.o.d"
  "CMakeFiles/codesign_gemmsim.dir/kernel_model.cpp.o"
  "CMakeFiles/codesign_gemmsim.dir/kernel_model.cpp.o.d"
  "CMakeFiles/codesign_gemmsim.dir/quantization.cpp.o"
  "CMakeFiles/codesign_gemmsim.dir/quantization.cpp.o.d"
  "CMakeFiles/codesign_gemmsim.dir/roofline.cpp.o"
  "CMakeFiles/codesign_gemmsim.dir/roofline.cpp.o.d"
  "CMakeFiles/codesign_gemmsim.dir/simulator.cpp.o"
  "CMakeFiles/codesign_gemmsim.dir/simulator.cpp.o.d"
  "CMakeFiles/codesign_gemmsim.dir/sm_scheduler.cpp.o"
  "CMakeFiles/codesign_gemmsim.dir/sm_scheduler.cpp.o.d"
  "libcodesign_gemmsim.a"
  "libcodesign_gemmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_gemmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
