# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_cli_gpus "/root/repo/build/tools/codesign" "gpus")
set_tests_properties(smoke_cli_gpus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_cli_models "/root/repo/build/tools/codesign" "models")
set_tests_properties(smoke_cli_models PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_cli_clusters "/root/repo/build/tools/codesign" "clusters")
set_tests_properties(smoke_cli_clusters PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_cli_advise "/root/repo/build/tools/codesign" "advise" "gpt3-2.7b")
set_tests_properties(smoke_cli_advise PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_cli_custom "/root/repo/build/tools/codesign" "train" "--custom=h=2048,a=16,L=24,v=50304")
set_tests_properties(smoke_cli_custom PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_cli_gemm "/root/repo/build/tools/codesign" "gemm" "--m=4096" "--n=4096" "--k=4096")
set_tests_properties(smoke_cli_gemm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_cli_explain "/root/repo/build/tools/codesign" "explain" "--m=8192" "--n=50257" "--k=2560")
set_tests_properties(smoke_cli_explain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_cli_train "/root/repo/build/tools/codesign" "train" "gpt3-125m")
set_tests_properties(smoke_cli_train PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_cli_infer "/root/repo/build/tools/codesign" "infer" "pythia-410m")
set_tests_properties(smoke_cli_infer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_cli_pipeline "/root/repo/build/tools/codesign" "pipeline" "gpt3-2.7b" "--stages=8")
set_tests_properties(smoke_cli_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_cli_design "/root/repo/build/tools/codesign" "design" "--params=1.3e9")
set_tests_properties(smoke_cli_design PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_cli_plan "/root/repo/build/tools/codesign" "plan" "gpt3-2.7b" "--gpus=16")
set_tests_properties(smoke_cli_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_cli_compare "/root/repo/build/tools/codesign" "compare" "gpt3-2.7b" "gpt3-2.7b-c2")
set_tests_properties(smoke_cli_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_cli_trace "/root/repo/build/tools/codesign" "trace" "gpt3-125m" "--out=/root/repo/build/trace_smoke.json")
set_tests_properties(smoke_cli_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
