# Empty compiler generated dependencies file for codesign.
# This may be replaced when dependencies are built.
