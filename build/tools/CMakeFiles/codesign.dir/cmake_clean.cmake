file(REMOVE_RECURSE
  "CMakeFiles/codesign.dir/codesign_cli.cpp.o"
  "CMakeFiles/codesign.dir/codesign_cli.cpp.o.d"
  "codesign"
  "codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
